"""The canonical solve API: :class:`SolveSpec` in, :class:`SolveOutcome` out.

Before this module existed the codebase had three divergent ingress shapes
for the same operation — CLI argparse namespaces, the engine's
``SolveRequest`` and the service's JSON-lines ``ServiceRequest`` — each with
its own validation and parameter plumbing.  ``repro.api`` v1 consolidates
them into one **versioned, typed, serializable** pair:

* :class:`SolveSpec` — everything needed to reproduce one solve: the graph
  source (dataset name, edge-list path or inline edges — or none, for specs
  bound to a caller-supplied graph), the solver name, the budget, solver
  parameters and engine-construction options.  Frozen, strictly validated,
  and round-trippable through **canonical JSON** and **pickle** — the pickle
  path is what lets :class:`~repro.service.scheduler.SolveService` ship
  specs to ``ProcessPoolExecutor`` workers for true cross-graph parallelism.
* :class:`SolveOutcome` — the result of serving one spec: the machine-
  readable solve payload (or an error), the graph fingerprint, cache routing
  metadata and wall-clock timings.  Its :meth:`~SolveOutcome.canonical` form
  (volatile fields stripped) is the byte-identity comparand shared by every
  execution path: direct engine solves, warm sessions, thread and process
  executors, stdio and TCP transports.

Both carry ``schema_version`` (currently ``1``); a payload from a newer
schema fails loudly instead of being half-understood.

(The pre-v1 ``SolveRequest`` / ``ServiceRequest`` adapters served their
one-release deprecation window and are gone; construct :class:`SolveSpec`
directly.)

This module deliberately imports nothing from :mod:`repro.core` or
:mod:`repro.service` (only :mod:`repro.utils`), so the engine and every
solver module can depend on the spec type without import cycles.
"""

from __future__ import annotations

import copy
import json
from dataclasses import dataclass, field, fields
from typing import Dict, Mapping, Optional, Tuple

from repro.utils.errors import ReproError

__all__ = [
    "SCHEMA_VERSION",
    "ENGINE_OPTION_FIELDS",
    "ERROR_KINDS",
    "SpecError",
    "SolveSpec",
    "SolveOutcome",
    "parse_spec",
    "parse_spec_line",
    "result_to_json",
    "canonical_result",
]

#: The wire/schema version this build speaks.  Bump on any incompatible
#: change to the :class:`SolveSpec` / :class:`SolveOutcome` JSON layout.
SCHEMA_VERSION = 1

#: Engine-construction options a spec may set.  They are part of the
#: serving layer's session cache key; both knobs change timings only, never
#: results (asserted by the engine equivalence tests).
ENGINE_OPTION_FIELDS = ("tree_mode", "full_peel_threshold")

#: The structured error taxonomy carried by failed :class:`SolveOutcome`\ s
#: (``error_kind``).  ``timeout`` / ``overloaded`` / ``worker_crash`` are
#: serving faults a client may retry; ``invalid`` is a malformed or
#: unservable request (re-sending it cannot succeed); ``internal`` is a bug
#: surfaced at the serving boundary.  Defined here (not in
#: :mod:`repro.service.resilience`) so the wire types stay dependency-free.
ERROR_KINDS = ("timeout", "overloaded", "worker_crash", "invalid", "internal")

#: Top-level JSON fields of a serialized spec (anything else fails loudly —
#: a typo'd field silently running with defaults is how batch results go
#: subtly wrong).
_SPEC_JSON_FIELDS = (
    "schema_version",
    "id",
    "dataset",
    "edge_list",
    "edges",
    "algorithm",
    "budget",
    "params",
    "initial_anchors",
    "engine",
    "deadline_s",
    "trace_id",
)


class SpecError(ReproError):
    """A malformed solve spec (unknown field, missing graph source, ...)."""


def _freeze(value: object) -> object:
    """Recursively turn lists/tuples into tuples (JSON arrays round-trip)."""
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(item) for item in value)
    return value


def _thaw(value: object) -> object:
    """Inverse of :func:`_freeze` for JSON rendering (tuples -> lists)."""
    if isinstance(value, tuple):
        return [_thaw(item) for item in value]
    return value


def _edge_pairs(value: object, field_name: str) -> Tuple[Tuple[object, object], ...]:
    if not isinstance(value, (list, tuple)):
        raise SpecError(f"{field_name} must be a list of [u, v] pairs")
    pairs = []
    for pair in value:
        if not isinstance(pair, (list, tuple)) or len(pair) != 2:
            raise SpecError(f"{field_name} entries must be [u, v] pairs, got {pair!r}")
        pairs.append((_freeze(pair[0]), _freeze(pair[1])))
    return tuple(pairs)


def _normalized_items(
    value: object, field_name: str
) -> Tuple[Tuple[str, object], ...]:
    """A mapping (or tuple of pairs) as a sorted, frozen tuple of items."""
    if isinstance(value, Mapping):
        items = value.items()
    elif isinstance(value, (list, tuple)):
        try:
            items = dict(value).items()
        except (TypeError, ValueError) as exc:
            raise SpecError(f"{field_name} must be a mapping") from exc
    else:
        raise SpecError(f"{field_name} must be a mapping, got {value!r}")
    normalized = []
    for key, entry in items:
        if not isinstance(key, str):
            raise SpecError(f"{field_name} keys must be strings, got {key!r}")
        normalized.append((key, _freeze(entry)))
    return tuple(sorted(normalized, key=lambda item: item[0]))


@dataclass(frozen=True, eq=False)
class SolveSpec:
    """One canonical, versioned, serializable solve request.

    Exactly one graph source may be set: ``dataset`` (a registry name),
    ``edge_list`` (a SNAP file path, loaded through the ``.npz`` pipeline)
    or ``edges`` (an inline edge list).  A spec with **no** source is
    *unbound* — usable against a caller-supplied graph (the engine's and
    :class:`~repro.api.session.Session`'s native mode); the serving layer
    requires a source (:meth:`require_source`).

    ``params`` and ``engine`` accept mappings and are normalised to sorted
    tuples of items, so two specs built from differently-ordered dicts are
    equal, hash alike, and render the same canonical JSON.  Engine options
    are restricted to :data:`ENGINE_OPTION_FIELDS` with scalar values (they
    feed the hashable session cache key).

    Serialization contract (the test-suite round-trips randomized specs):

    * ``spec == SolveSpec.from_json_dict(json.loads(spec.canonical_json()))``
      for every JSON-typed spec;
    * ``spec == pickle.loads(pickle.dumps(spec))`` always — including specs
      whose params carry non-JSON values (enums), which the JSON path
      rejects loudly instead of mangling.
    """

    algorithm: str = "gas"
    budget: int = 5
    params: Tuple[Tuple[str, object], ...] = ()
    initial_anchors: Tuple[Tuple[object, object], ...] = ()
    dataset: Optional[str] = None
    edge_list: Optional[str] = None
    edges: Optional[Tuple[Tuple[object, object], ...]] = None
    engine: Tuple[Tuple[str, object], ...] = ()
    request_id: str = ""
    deadline_s: Optional[float] = None
    trace_id: Optional[str] = None
    schema_version: int = SCHEMA_VERSION

    def __post_init__(self) -> None:
        set_ = object.__setattr__
        if self.schema_version != SCHEMA_VERSION:
            raise SpecError(
                f"unsupported schema_version {self.schema_version!r}; "
                f"this build speaks v{SCHEMA_VERSION}"
            )
        if not isinstance(self.algorithm, str) or not self.algorithm:
            raise SpecError(f"algorithm must be a non-empty string, got {self.algorithm!r}")
        if not isinstance(self.budget, int) or isinstance(self.budget, bool):
            raise SpecError(f"budget must be an integer, got {self.budget!r}")
        if not isinstance(self.request_id, str):
            raise SpecError(f"request id must be a string, got {self.request_id!r}")
        if self.deadline_s is not None:
            if (
                not isinstance(self.deadline_s, (int, float))
                or isinstance(self.deadline_s, bool)
                or self.deadline_s <= 0
            ):
                raise SpecError(
                    f"deadline_s must be a positive number of seconds, "
                    f"got {self.deadline_s!r}"
                )
            set_(self, "deadline_s", float(self.deadline_s))
        if self.trace_id is not None and (
            not isinstance(self.trace_id, str) or not self.trace_id
        ):
            raise SpecError(
                f"trace_id must be a non-empty string, got {self.trace_id!r}"
            )
        sources = [s for s in (self.dataset, self.edge_list, self.edges) if s is not None]
        if len(sources) > 1:
            raise SpecError(
                "exactly one graph source required: dataset, edge_list or edges"
            )
        if self.dataset is not None and not isinstance(self.dataset, str):
            raise SpecError(f"dataset must be a string, got {self.dataset!r}")
        if self.edge_list is not None and not isinstance(self.edge_list, str):
            raise SpecError(f"edge_list must be a string, got {self.edge_list!r}")
        if self.edges is not None:
            set_(self, "edges", _edge_pairs(self.edges, "edges"))
        set_(self, "initial_anchors", _edge_pairs(self.initial_anchors, "initial_anchors"))
        set_(self, "params", _normalized_items(self.params, "params"))
        set_(self, "engine", _normalized_items(self.engine, "engine"))
        unknown = {key for key, _v in self.engine} - set(ENGINE_OPTION_FIELDS)
        if unknown:
            raise SpecError(
                f"unknown engine option(s): {', '.join(sorted(unknown))}; "
                f"accepted: {', '.join(ENGINE_OPTION_FIELDS)}"
            )
        for option, value in self.engine:
            # Engine options feed the (hashable) session cache key.
            if not isinstance(value, (str, int, float, bool)) and value is not None:
                raise SpecError(
                    f"engine option {option!r} must be a scalar, got {value!r}"
                )

    # -- equality spans subclasses ------------------------------------------
    def _identity(self) -> Tuple[object, ...]:
        return tuple(getattr(self, spec_field.name) for spec_field in fields(SolveSpec))

    def __eq__(self, other: object) -> bool:
        # Deliberately *not* the dataclass exact-class equality: adapters
        # subclassing SolveSpec must compare equal to the spec they wrap.
        if not isinstance(other, SolveSpec):
            return NotImplemented
        return self._identity() == other._identity()

    def __hash__(self) -> int:
        return hash(self._identity())

    # -- parameter access ---------------------------------------------------
    def param(self, name: str, default: object = None) -> object:
        return dict(self.params).get(name, default)

    @property
    def params_map(self) -> Dict[str, object]:
        """The solver parameters as a plain dict."""
        return dict(self.params)

    @property
    def engine_map(self) -> Dict[str, object]:
        """The engine-construction options as a plain dict."""
        return dict(self.engine)

    def engine_key(self) -> Tuple[Tuple[str, object], ...]:
        """The engine options as a stable, hashable cache-key component."""
        return self.engine

    def reject_initial_anchors(self, solver_name: str) -> None:
        """Fail fast for solvers that cannot honour pre-set anchors.

        Silently ignoring ``initial_anchors`` would return a result computed
        on a different problem than the caller asked for.
        """
        if self.initial_anchors:
            from repro.utils.errors import InvalidParameterError

            raise InvalidParameterError(
                f"solver {solver_name!r} does not support initial_anchors"
            )

    # -- graph source -------------------------------------------------------
    @property
    def has_source(self) -> bool:
        return (
            self.dataset is not None
            or self.edge_list is not None
            or self.edges is not None
        )

    def require_source(self) -> "SolveSpec":
        """Raise unless the spec names its graph (the serving-layer contract)."""
        if not self.has_source:
            raise SpecError(
                "exactly one graph source required: dataset, edge_list or edges"
            )
        return self

    def source_label(self) -> str:
        """Human-readable graph source (for logs and error messages)."""
        if self.dataset is not None:
            return f"dataset:{self.dataset}"
        if self.edge_list is not None:
            return f"edge_list:{self.edge_list}"
        if self.edges is not None:
            return f"edges:{len(self.edges)}"
        return "unbound"

    # -- identity for caches ------------------------------------------------
    def signature(self) -> Tuple[object, ...]:
        """A stable, hashable digest of everything that determines the result.

        Excludes ``request_id`` (two ids asking the same question must share
        one cache slot) but **includes** the engine options — built-in
        solvers provably ignore them for results, but a third-party solver
        could observe them, so cache layers stay conservative.  The graph is
        identified separately (by fingerprint), so the source fields are
        excluded too: two routes to the same graph share cached results.
        ``deadline_s`` is also excluded: it bounds *serving*, never the
        result — a cached answer is served instantly and therefore always
        within any deadline, so deadline'd and deadline-free repeats of one
        question share a slot (and old specs keep their exact signature).
        ``trace_id`` is excluded for the same reason: it labels how a
        request was *served* (observability), never what it computed.
        """
        return (
            self.schema_version,
            self.algorithm,
            self.budget,
            json.dumps(_thaw(self.params), sort_keys=True, default=repr),
            self.initial_anchors,
            self.engine,
        )

    # -- serialization ------------------------------------------------------
    def to_json_dict(self) -> dict:
        """The JSON-lines rendering (inverse of :func:`parse_spec`)."""
        payload: Dict[str, object] = {
            "schema_version": self.schema_version,
            "id": self.request_id,
        }
        if self.dataset is not None:
            payload["dataset"] = self.dataset
        if self.edge_list is not None:
            payload["edge_list"] = self.edge_list
        if self.edges is not None:
            payload["edges"] = _thaw(self.edges)
        payload["algorithm"] = self.algorithm
        payload["budget"] = self.budget
        if self.params:
            payload["params"] = {key: _thaw(value) for key, value in self.params}
        if self.initial_anchors:
            payload["initial_anchors"] = _thaw(self.initial_anchors)
        if self.engine:
            payload["engine"] = dict(self.engine)
        if self.deadline_s is not None:
            # Emitted only when set, so pre-deadline specs render the exact
            # bytes they always did (the schema-compatibility contract).
            payload["deadline_s"] = self.deadline_s
        if self.trace_id is not None:
            # Same contract as deadline_s: absent means absent bytes.
            payload["trace_id"] = self.trace_id
        return payload

    def canonical_json(self) -> str:
        """Canonical one-line JSON: sorted keys, minimal whitespace.

        Two equal specs always render byte-identical canonical JSON.  A spec
        whose params carry non-JSON values (e.g. enums passed by in-process
        callers) raises :class:`SpecError` — such specs are picklable but
        not wire-serializable, by design.
        """
        try:
            return json.dumps(
                self.to_json_dict(), sort_keys=True, separators=(",", ":")
            )
        except (TypeError, ValueError) as exc:
            raise SpecError(f"spec is not JSON-serializable: {exc}") from exc

    @classmethod
    def from_json_dict(
        cls, payload: Mapping[str, object], default_id: str = ""
    ) -> "SolveSpec":
        """Validate a decoded JSON mapping into a spec (strict fields)."""
        if not isinstance(payload, Mapping):
            raise SpecError(
                f"request must be a JSON object, got {type(payload).__name__}"
            )
        unknown = set(payload) - set(_SPEC_JSON_FIELDS)
        if unknown:
            raise SpecError(
                f"unknown request field(s): {', '.join(sorted(map(str, unknown)))}; "
                f"accepted: {', '.join(_SPEC_JSON_FIELDS)}"
            )
        params = payload.get("params", {})
        if not isinstance(params, Mapping):
            raise SpecError("params must be a JSON object")
        engine = payload.get("engine", {})
        if not isinstance(engine, Mapping):
            raise SpecError("engine must be a JSON object")
        raw_id = payload.get("id")
        # Presence, not truthiness: an explicit id of 0 must stay "0".
        request_id = default_id if raw_id is None or raw_id == "" else str(raw_id)
        edges = payload.get("edges")
        version = payload.get("schema_version", SCHEMA_VERSION)
        if not isinstance(version, int) or isinstance(version, bool):
            raise SpecError(f"schema_version must be an integer, got {version!r}")
        return cls(
            schema_version=version,
            request_id=request_id,
            dataset=payload.get("dataset"),  # type: ignore[arg-type]
            edge_list=payload.get("edge_list"),  # type: ignore[arg-type]
            edges=_edge_pairs(edges, "edges") if edges is not None else None,
            algorithm=str(payload.get("algorithm", "gas")),
            budget=payload.get("budget", 5),  # type: ignore[arg-type]
            params=params,
            initial_anchors=payload.get("initial_anchors", ()),
            engine=engine,
            deadline_s=payload.get("deadline_s"),  # type: ignore[arg-type]
            trace_id=payload.get("trace_id"),  # type: ignore[arg-type]
        )

    @classmethod
    def from_json_line(cls, line: str, default_id: str = "") -> "SolveSpec":
        """Parse one JSON line into a spec."""
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            raise SpecError(f"invalid JSON: {exc}") from exc
        return cls.from_json_dict(payload, default_id=default_id)

    # Back-compat spelling used by the ServiceRequest era.
    def to_dict(self) -> dict:
        return self.to_json_dict()


def parse_spec(payload: Mapping[str, object], default_id: str = "") -> SolveSpec:
    """Module-level alias of :meth:`SolveSpec.from_json_dict` + source check."""
    return SolveSpec.from_json_dict(payload, default_id=default_id).require_source()


def parse_spec_line(line: str, default_id: str = "") -> SolveSpec:
    """Module-level alias of :meth:`SolveSpec.from_json_line` + source check."""
    return SolveSpec.from_json_line(line, default_id=default_id).require_source()


# ---------------------------------------------------------------------------
# Result rendering (shared by the CLI, the service and every outcome)
# ---------------------------------------------------------------------------
def _json_safe(value: object) -> object:
    """Recursively convert a result payload into JSON-serialisable types."""
    if isinstance(value, dict):
        return {str(key): _json_safe(entry) for key, entry in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = list(value)
        if isinstance(value, (set, frozenset)):
            items = sorted(items, key=repr)
        return [_json_safe(entry) for entry in items]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def result_to_json(result) -> dict:
    """Machine-readable rendering of an :class:`~repro.core.result.AnchorResult`.

    This is the single rendering shared by ``repro-atr solve --format json``,
    every service response and every :class:`SolveOutcome` — one code path
    is what makes the byte-identity guarantee checkable at all.
    """
    return {
        "algorithm": result.algorithm,
        "budget": result.budget,
        "anchors": [list(edge) for edge in result.anchors],
        "gain": result.gain,
        "per_round_gain": list(result.per_round_gain),
        "followers": sorted([list(edge) for edge in result.followers]),
        "follower_count": len(result.followers),
        "gain_by_trussness": {str(k): v for k, v in result.gain_by_trussness.items()},
        "timings": {
            "elapsed_seconds": result.elapsed_seconds,
            "cumulative_seconds_per_round": list(
                result.extra.get("cumulative_seconds_per_round", [])
            ),
        },
        "extra": _json_safe(result.extra),
    }


#: ``extra`` entries stripped by :func:`canonical_result`: wall-clock splits
#: and work-rate counters.  The latter legitimately depend on session warmth
#: (a warm engine's persisted baseline follower cache makes GAS's first
#: round recompute nothing), so they are serving metadata — like timings —
#: not solution content.
_VOLATILE_EXTRA_FIELDS = (
    "cumulative_seconds_per_round",
    "recomputed_entries_per_round",
)


def canonical_result(result_payload: Mapping[str, object]) -> dict:
    """A :func:`result_to_json` payload with every volatile field removed.

    Two runs of a deterministic solver differ only in timings and
    cache-warmth-dependent work counters; comparing the canonical forms for
    byte equality (``json.dumps(..., sort_keys=True)``) is the determinism
    check shared by the service tests, the benchmarks and the transport /
    executor byte-identity grid.
    """
    canonical = copy.deepcopy(dict(result_payload))
    canonical.pop("timings", None)
    extra = canonical.get("extra")
    if isinstance(extra, dict):
        for volatile in _VOLATILE_EXTRA_FIELDS:
            extra.pop(volatile, None)
    return canonical


# ---------------------------------------------------------------------------
# Outcomes
# ---------------------------------------------------------------------------
#: Top-level JSON fields of a serialized outcome.
_OUTCOME_JSON_FIELDS = (
    "schema_version",
    "id",
    "ok",
    "error",
    "error_kind",
    "retryable",
    "fingerprint",
    "cache",
    "timings",
    "result",
)


@dataclass(frozen=True, eq=False)
class SolveOutcome:
    """The outcome of serving one :class:`SolveSpec`.

    ``result`` is the :func:`result_to_json` payload on success (``None`` on
    failure, with ``error`` set); failed outcomes additionally carry the
    structured taxonomy — ``error_kind`` (one of :data:`ERROR_KINDS`) and
    ``retryable`` — so clients can distinguish a shed or timed-out request
    (safe to retry) from a malformed one (never retry); ``cache`` records
    how the caches served the request (``session`` is ``"hit"``, ``"miss"``
    or ``"bypass"``, ``memo`` flags a per-session memo answer, ``store`` a
    shared result-store answer); ``timings`` splits queueing from solving.
    Frozen and picklable, so process-executor workers can hand outcomes
    back across process boundaries unchanged.
    """

    request_id: str = ""
    ok: bool = True
    result: Optional[dict] = None
    error: Optional[str] = None
    error_kind: Optional[str] = None
    retryable: Optional[bool] = None
    fingerprint: Optional[str] = None
    cache: Dict[str, object] = field(default_factory=dict)
    timings: Dict[str, float] = field(default_factory=dict)
    schema_version: int = SCHEMA_VERSION

    def __post_init__(self) -> None:
        if self.schema_version != SCHEMA_VERSION:
            raise SpecError(
                f"unsupported schema_version {self.schema_version!r}; "
                f"this build speaks v{SCHEMA_VERSION}"
            )
        if self.error_kind is not None and self.error_kind not in ERROR_KINDS:
            raise SpecError(
                f"unknown error_kind {self.error_kind!r}; "
                f"expected one of {ERROR_KINDS}"
            )

    def __eq__(self, other: object) -> bool:
        # Not the dataclass exact-class equality: subclasses must compare
        # equal to the outcome they stand for.
        if not isinstance(other, SolveOutcome):
            return NotImplemented
        return tuple(
            getattr(self, outcome_field.name) for outcome_field in fields(SolveOutcome)
        ) == tuple(
            getattr(other, outcome_field.name) for outcome_field in fields(SolveOutcome)
        )

    def to_json_dict(self) -> dict:
        payload = {
            "schema_version": self.schema_version,
            "id": self.request_id,
            "ok": self.ok,
            "error": self.error,
            "fingerprint": self.fingerprint,
            "cache": dict(self.cache),
            "timings": dict(self.timings),
            "result": self.result,
        }
        # Taxonomy fields are emitted only when classified, so outcomes of
        # taxonomy-unaware producers (and every success) keep their exact
        # pre-resilience byte shape.
        if self.error_kind is not None:
            payload["error_kind"] = self.error_kind
            payload["retryable"] = bool(self.retryable)
        return payload

    # Back-compat spelling used by the ServiceResponse era.
    def to_dict(self) -> dict:
        return self.to_json_dict()

    def to_json_line(self) -> str:
        """One-line JSON rendering (the ``serve`` / ``batch`` output format)."""
        return json.dumps(self.to_json_dict(), sort_keys=True)

    @classmethod
    def from_json_dict(cls, payload: Mapping[str, object]) -> "SolveOutcome":
        """Decode a serialized outcome (strict fields)."""
        if not isinstance(payload, Mapping):
            raise SpecError(
                f"outcome must be a JSON object, got {type(payload).__name__}"
            )
        unknown = set(payload) - set(_OUTCOME_JSON_FIELDS)
        if unknown:
            raise SpecError(
                f"unknown outcome field(s): {', '.join(sorted(map(str, unknown)))}"
            )
        return cls(
            schema_version=payload.get("schema_version", SCHEMA_VERSION),  # type: ignore[arg-type]
            request_id=str(payload.get("id", "")),
            ok=bool(payload.get("ok", False)),
            error=payload.get("error"),  # type: ignore[arg-type]
            error_kind=payload.get("error_kind"),  # type: ignore[arg-type]
            retryable=payload.get("retryable"),  # type: ignore[arg-type]
            fingerprint=payload.get("fingerprint"),  # type: ignore[arg-type]
            cache=dict(payload.get("cache", {})),  # type: ignore[arg-type]
            timings=dict(payload.get("timings", {})),  # type: ignore[arg-type]
            result=payload.get("result"),  # type: ignore[arg-type]
        )

    def canonical(self) -> dict:
        """The deterministic core: id, status and the canonical result.

        Serving metadata (cache route, timings, warmth-dependent work
        counters) legitimately differs between a warm and a cold run, a
        thread and a process executor, a stdio and a TCP transport; this is
        the part that must not.  The error taxonomy is part of the core —
        a shed request must classify as ``overloaded`` on every transport —
        and is included only when set, so pre-taxonomy canonical forms are
        unchanged.
        """
        canonical = {
            "id": self.request_id,
            "ok": self.ok,
            "error": self.error,
            "result": canonical_result(self.result) if self.result is not None else None,
        }
        if self.error_kind is not None:
            canonical["error_kind"] = self.error_kind
            canonical["retryable"] = bool(self.retryable)
        return canonical

    def raise_for_error(self) -> "SolveOutcome":
        """Raise :class:`~repro.utils.errors.ReproError` on a failed outcome."""
        if not self.ok:
            raise ReproError(self.error or "solve failed")
        return self
