"""Python-caller facade of ``repro.api``: :class:`Session` and :func:`solve`.

A :class:`Session` binds one resolved graph to one warm
:class:`~repro.core.engine.SolverEngine` and serves
:class:`~repro.api.spec.SolveSpec`\\ s against it:

* repeated solves reuse the engine's expensive session assets (the
  :class:`~repro.graph.index.GraphIndex`, the baseline decomposition, and —
  for GAS — the persisted baseline follower cache);
* deterministic specs are memoised per session under the same gating rule
  as the serving layer (non-``randomized`` solver, or an explicit ``seed``);
* failures come back as ``ok=False`` :class:`~repro.api.spec.SolveOutcome`\\ s
  from :meth:`Session.solve` (the serving-boundary shape), while
  :meth:`Session.solve_result` raises and returns the raw
  :class:`~repro.core.result.AnchorResult` for callers who prefer
  exceptions.

:func:`solve` is the one-shot module-level entry point (``repro.api.solve``)
— build a spec (or pass spec fields as keywords), resolve its graph, solve,
return the outcome.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Tuple

from repro.api.resolve import resolve_graph
from repro.api.spec import SolveOutcome, SolveSpec, SpecError, result_to_json
from repro.core.engine import SolverEngine, get_solver
from repro.core.result import AnchorResult
from repro.datasets import graph_fingerprint
from repro.graph.graph import Graph
from repro.utils.errors import ReproError
from repro.utils.lru import DEFAULT_MEMO_LIMIT, PayloadCache

__all__ = ["Session", "solve"]


def _build_spec(spec: Optional[SolveSpec], fields: Dict[str, object]) -> SolveSpec:
    if spec is None:
        return SolveSpec(**fields)  # type: ignore[arg-type]
    if fields:
        raise SpecError("pass either a SolveSpec or spec fields, not both")
    if not isinstance(spec, SolveSpec):
        raise SpecError(f"expected a SolveSpec, got {type(spec).__name__}")
    return spec


def memoizable(spec: SolveSpec) -> bool:
    """Deterministic specs only: a cached answer must equal a re-run.

    The shared gating rule of every cache layer (session memo, shared
    result store): the solver is not marked ``randomized``, or the spec
    carries an explicit ``seed``.
    """
    solver = get_solver(spec.algorithm)
    return (not solver.randomized) or (spec.param("seed") is not None)


class Session:
    """One resolved graph, one warm engine, many solves.

    Construct from exactly one source::

        session = Session(dataset="college")
        session = Session(graph=my_graph)
        session = Session(edge_list="data/roadnet.txt")
        session = Session(edges=[(1, 2), (2, 3), (1, 3)])

    Engine-construction options (``tree_mode``, ``full_peel_threshold``)
    fix the engine for the session's lifetime; a spec carrying *different*
    engine options is rejected (the serving layer routes such specs to a
    different session instead).

    A spec's graph source, when present, must match the session's source
    (same dataset name / path / edge tuple) — solving a spec that names a
    different graph on this session would silently answer the wrong
    question.  Unbound specs (no source) always apply.
    """

    def __init__(
        self,
        graph: Optional[Graph] = None,
        dataset: Optional[str] = None,
        edge_list: Optional[str] = None,
        edges: Optional[Tuple[Tuple[object, object], ...]] = None,
        tree_mode: Optional[str] = None,
        full_peel_threshold: Optional[float] = None,
        memoize: bool = True,
    ) -> None:
        sources = [s for s in (graph, dataset, edge_list, edges) if s is not None]
        if len(sources) != 1:
            raise SpecError(
                "exactly one session source required: graph, dataset, "
                "edge_list or edges"
            )
        engine_options: Dict[str, object] = {}
        if tree_mode is not None:
            engine_options["tree_mode"] = tree_mode
        if full_peel_threshold is not None:
            engine_options["full_peel_threshold"] = full_peel_threshold
        self._source = SolveSpec(dataset=dataset, edge_list=edge_list, edges=edges) if graph is None else None
        if graph is not None:
            self.graph = graph
            self.fingerprint = graph_fingerprint(graph)
        else:
            assert self._source is not None
            self.graph, self.fingerprint = resolve_graph(self._source)
        self.engine = SolverEngine(self.graph, **engine_options)  # type: ignore[arg-type]
        self._engine_options = tuple(sorted(engine_options.items()))
        self.memoize = memoize
        # Same memo primitive as the serving layer's per-session memo and
        # result store (one definition of the deepcopy-LRU semantics);
        # sessions are single-caller objects, so no lock.
        self._memo = PayloadCache(DEFAULT_MEMO_LIMIT if memoize else 0)

    # ------------------------------------------------------------------
    def _check_spec(self, spec: SolveSpec) -> None:
        if spec.has_source and self._source is not None:
            if (
                spec.dataset != self._source.dataset
                or spec.edge_list != self._source.edge_list
                or spec.edges != self._source.edges
            ):
                raise SpecError(
                    f"spec names {spec.source_label()} but this session is "
                    f"bound to {self._source.source_label()}"
                )
        elif spec.has_source:
            # Session built from a caller-supplied graph: verify by content.
            _graph, fingerprint = resolve_graph(spec)
            if fingerprint != self.fingerprint:
                raise SpecError(
                    f"spec names {spec.source_label()}, which does not match "
                    "this session's graph"
                )
        if spec.engine and spec.engine != self._engine_options:
            raise SpecError(
                f"spec engine options {spec.engine_map!r} differ from this "
                f"session's {dict(self._engine_options)!r}"
            )

    def solve_result(
        self, spec: Optional[SolveSpec] = None, **spec_fields: object
    ) -> AnchorResult:
        """Solve and return the raw :class:`AnchorResult` (raises on error)."""
        spec = _build_spec(spec, spec_fields)
        self._check_spec(spec)
        return self.engine.solve_spec(spec)

    def solve(
        self, spec: Optional[SolveSpec] = None, **spec_fields: object
    ) -> SolveOutcome:
        """Solve and return a :class:`SolveOutcome` (never raises for a bad spec)."""
        started = time.perf_counter()
        try:
            spec = _build_spec(spec, spec_fields)
            self._check_spec(spec)
            memo_ok = self.memoize and memoizable(spec)
            signature = (self.fingerprint, spec.signature()) if memo_ok else None
            payload = self._memo.get(signature) if memo_ok else None
            memo_hit = payload is not None
            if payload is None:
                result = self.engine.solve_spec(spec)
                payload = result_to_json(result)
                if memo_ok:
                    self._memo.put(signature, payload)
            return SolveOutcome(
                request_id=spec.request_id,
                ok=True,
                result=payload,
                fingerprint=self.fingerprint,
                cache={
                    "session": "bound",
                    "memo": memo_hit,
                    "engine_solve_count": self.engine.solve_count,
                },
                timings={"solve_s": round(time.perf_counter() - started, 6)},
            )
        except ReproError as exc:
            return SolveOutcome(
                request_id=spec.request_id if isinstance(spec, SolveSpec) else "",
                ok=False,
                error=str(exc),
                fingerprint=self.fingerprint,
                timings={"solve_s": round(time.perf_counter() - started, 6)},
            )

    def info(self) -> Dict[str, object]:
        """Session diagnostics: fingerprint, memo counters, engine lifetime stats."""
        payload = dict(self.engine.session_info())
        payload["fingerprint"] = self.fingerprint
        payload["memo_hits"] = self.memo_hits
        payload["memo_size"] = len(self._memo)
        return payload

    @property
    def memo_hits(self) -> int:
        return self._memo.hits


def solve(
    spec: Optional[SolveSpec] = None,
    graph: Optional[Graph] = None,
    **spec_fields: object,
) -> SolveOutcome:
    """One-shot canonical solve: ``repro.api.solve``.

    Pass a ready :class:`SolveSpec`, or spec fields as keywords::

        outcome = repro.api.solve(dataset="college", algorithm="gas", budget=5)
        outcome = repro.api.solve(my_spec)
        outcome = repro.api.solve(graph=g, algorithm="base", budget=2)

    ``graph`` solves an *unbound* spec against a caller-supplied graph.
    Returns a :class:`SolveOutcome`; failures come back as ``ok=False``
    outcomes (use :meth:`SolveOutcome.raise_for_error` to re-raise).  Use a
    :class:`Session` instead when running several solves over one graph —
    it keeps the engine (and its caches) warm.
    """
    started = time.perf_counter()
    try:
        spec = _build_spec(spec, spec_fields)
        if graph is not None:
            if spec.has_source:
                raise SpecError("pass either a graph or a spec with a source, not both")
            session = Session(graph=graph, **dict(spec.engine))  # type: ignore[arg-type]
        else:
            spec.require_source()
            session = Session(
                dataset=spec.dataset,
                edge_list=spec.edge_list,
                edges=spec.edges,
                **dict(spec.engine),  # type: ignore[arg-type]
            )
        return session.solve(spec)
    except ReproError as exc:
        return SolveOutcome(
            request_id=spec.request_id if isinstance(spec, SolveSpec) else "",
            ok=False,
            error=str(exc),
            timings={"solve_s": round(time.perf_counter() - started, 6)},
        )
