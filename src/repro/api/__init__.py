"""``repro.api`` v1 — the single public solve surface.

One versioned, serializable request/outcome pair
(:class:`~repro.api.spec.SolveSpec` / :class:`~repro.api.spec.SolveOutcome`)
shared by every ingress: the CLI, Python callers (:func:`solve`,
:class:`~repro.api.session.Session`), the serving layer
(:class:`~repro.service.scheduler.SolveService`, batching, the stdio and
TCP transports) and the experiment harness.  See
``docs/ARCHITECTURE.md`` ("Public API & transports") for the invariants.

Quick start::

    import repro.api as api

    outcome = api.solve(dataset="college", algorithm="gas", budget=5)
    print(outcome.result["gain"], outcome.fingerprint)

    session = api.Session(dataset="college")      # warm engine, memoised
    spec = api.SolveSpec(algorithm="base", budget=2)
    print(session.solve(spec).result["anchors"])

Import structure: the spec module is imported eagerly (it has no
dependencies on the engine, so :mod:`repro.core.engine` and every solver
module can import it without a cycle); the session/resolver symbols — which
*do* import the engine — load lazily on first attribute access.
"""

from repro.api.spec import (
    ENGINE_OPTION_FIELDS,
    SCHEMA_VERSION,
    SolveOutcome,
    SolveSpec,
    SpecError,
    canonical_result,
    parse_spec,
    parse_spec_line,
    result_to_json,
)

__all__ = [
    "ENGINE_OPTION_FIELDS",
    "SCHEMA_VERSION",
    "GraphResolver",
    "Session",
    "SolveOutcome",
    "SolveSpec",
    "SpecError",
    "canonical_result",
    "parse_spec",
    "parse_spec_line",
    "resolve_graph",
    "result_to_json",
    "solve",
]

#: Lazily-resolved attribute -> defining submodule (PEP 562).  These
#: modules import :mod:`repro.core.engine`; loading them here eagerly would
#: close an import cycle when the engine imports :mod:`repro.api.spec`.
_LAZY_ATTRIBUTES = {
    "Session": "repro.api.session",
    "solve": "repro.api.session",
    "GraphResolver": "repro.api.resolve",
    "resolve_graph": "repro.api.resolve",
}


def __getattr__(name: str):
    module_name = _LAZY_ATTRIBUTES.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.api' has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value  # cache for subsequent accesses
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY_ATTRIBUTES))
