"""Graph resolution: from a :class:`~repro.api.spec.SolveSpec` source to a
:class:`~repro.graph.graph.Graph` plus its content fingerprint.

One resolution semantics shared by every ingress (``repro.api.solve``,
:class:`~repro.api.session.Session`, the serving layer and its process-pool
workers):

* ``dataset`` names resolve through the (memoised) dataset registry;
* ``edge_list`` paths load through the ``.npz`` SNAP pipeline
  (:func:`~repro.datasets.snap.load_snap`);
* inline ``edges`` build a fresh :class:`Graph`.

:class:`GraphResolver` adds the capacity-bounded caches the scheduler used
to carry inline — dataset names invalidated by the graph's mutation
counter, file paths by the file's ``(size, mtime)`` signature, inline edge
tuples by value — so both the thread-pool service and each process-pool
worker reuse one battle-tested implementation.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from pathlib import Path
from typing import Optional, Tuple

from repro.api.spec import SolveSpec
from repro.datasets import graph_fingerprint, load_dataset, load_snap
from repro.graph.graph import Graph
from repro.obs.metrics import default_registry, now
from repro.utils.errors import ReproError

__all__ = ["GraphResolver", "resolve_graph"]


def resolve_graph(spec: SolveSpec) -> Tuple[Graph, str]:
    """Resolve ``spec``'s graph source (uncached) to ``(graph, fingerprint)``."""
    spec.require_source()
    if spec.dataset is not None:
        graph = load_dataset(spec.dataset)  # memoised by the registry
        return graph, graph_fingerprint(graph)
    if spec.edge_list is not None:
        path = Path(spec.edge_list)
        if not path.exists():
            raise ReproError(f"edge-list file not found: {path}")
        graph = load_snap(path)  # .npz pipeline
        return graph, graph_fingerprint(graph)
    assert spec.edges is not None
    graph = Graph.from_edges(spec.edges)
    return graph, graph_fingerprint(graph)


class GraphResolver:
    """Thread-safe, capacity-bounded resolution cache (graph + fingerprint).

    A long-running service fed many distinct graphs must not retain every
    :class:`Graph` it ever resolved — the session cache already bounds the
    *warm* set; these caches only skip re-resolution (re-parsing a file,
    re-hashing an inline edge list).
    """

    def __init__(self, capacity: int = 32) -> None:
        self.capacity = capacity
        self._lock = threading.Lock()
        self._dataset_graphs: "OrderedDict[str, Tuple[Graph, int, str]]" = OrderedDict()
        self._path_graphs: "OrderedDict[str, Tuple[Tuple[int, int], Graph, str]]" = (
            OrderedDict()
        )
        # Inline edge lists repeat verbatim in batches; rebuilding the Graph
        # and re-hashing it per request would tax exactly the warm path the
        # session cache exists to make cheap.  Keyed by the edge tuple
        # itself (equal tuples from different JSON lines hit too).
        self._inline_graphs: "OrderedDict[Tuple, Tuple[Graph, str]]" = OrderedDict()

    def resolve(self, spec: SolveSpec) -> Tuple[Graph, str]:
        """The spec's graph plus its content fingerprint (both cached).

        When a process-global metrics registry is armed
        (:func:`repro.obs.metrics.set_default_registry`) each resolution's
        wall time is observed into a per-source ``resolve.graph_s.<kind>``
        histogram; unarmed, the cost is one global read and a ``None`` check.
        """
        registry = default_registry()
        if registry is None:
            return self._resolve(spec)
        start = now()
        result = self._resolve(spec)
        kind = (
            "dataset"
            if spec.dataset is not None
            else "edge_list" if spec.edge_list is not None else "inline"
        )
        registry.histogram(f"resolve.graph_s.{kind}").observe(now() - start)
        return result

    def _resolve(self, spec: SolveSpec) -> Tuple[Graph, str]:
        spec.require_source()
        if spec.dataset is not None:
            return self._resolve_dataset(spec.dataset)
        if spec.edge_list is not None:
            return self._resolve_path(spec.edge_list)
        assert spec.edges is not None
        return self._resolve_inline(spec.edges)

    def _resolve_dataset(self, name: str) -> Tuple[Graph, str]:
        graph = load_dataset(name)  # memoised by the registry
        with self._lock:
            cached = self._dataset_graphs.get(name)
            if cached is not None and cached[0] is graph and cached[1] == graph._version:
                self._dataset_graphs.move_to_end(name)
                return graph, cached[2]
        fingerprint = graph_fingerprint(graph)
        with self._lock:
            self._dataset_graphs[name] = (graph, graph._version, fingerprint)
            self._trim(self._dataset_graphs)
        return graph, fingerprint

    def _resolve_path(self, edge_list: str) -> Tuple[Graph, str]:
        path = Path(edge_list)
        try:
            stat = path.stat()
        except OSError as exc:
            raise ReproError(f"edge-list file not found: {path}") from exc
        signature = (stat.st_size, stat.st_mtime_ns)
        key = str(path)
        with self._lock:
            cached = self._path_graphs.get(key)
            if cached is not None and cached[0] == signature:
                self._path_graphs.move_to_end(key)
                return cached[1], cached[2]
        graph = load_snap(path)  # .npz pipeline
        fingerprint = graph_fingerprint(graph)
        with self._lock:
            self._path_graphs[key] = (signature, graph, fingerprint)
            self._trim(self._path_graphs)
        return graph, fingerprint

    def _resolve_inline(
        self, edges: Tuple[Tuple[object, object], ...]
    ) -> Tuple[Graph, str]:
        cached: Optional[Tuple[Graph, str]]
        try:
            with self._lock:
                cached = self._inline_graphs.get(edges)
                if cached is not None:
                    self._inline_graphs.move_to_end(edges)
                    return cached
        except TypeError:
            cached = None  # unhashable vertex labels: build fresh
        graph = Graph.from_edges(edges)
        fingerprint = graph_fingerprint(graph)
        try:
            with self._lock:
                self._inline_graphs[edges] = (graph, fingerprint)
                self._trim(self._inline_graphs)
        except TypeError:
            pass
        return graph, fingerprint

    def _trim(self, cache: "OrderedDict") -> None:
        """Drop LRU resolution entries beyond the capacity (lock held)."""
        while len(cache) > self.capacity:
            cache.popitem(last=False)
