"""k-truss extraction and related queries built on top of the decomposition.

These helpers answer the classic queries of the truss model (Definition 2
and Definition 9 of the paper): the k-truss subgraph, the k-hull, the
triangle-connected k-truss components, and summary statistics such as the
maximum trussness and maximum support used in the dataset table (Table III).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from repro.graph.graph import Edge, Graph
from repro.graph.triangles import support_map, triangle_connected_components
from repro.truss.decomposition import TrussDecomposition, truss_decomposition
from repro.utils.errors import InvalidParameterError


def k_truss(
    graph: Graph,
    k: int,
    decomposition: Optional[TrussDecomposition] = None,
    anchors: Iterable[Edge] = (),
) -> Graph:
    """Return the k-truss of ``graph`` as a new graph (Definition 2).

    Anchored edges are members of every k-truss by construction; they are
    included in the returned subgraph together with every edge whose
    trussness is at least ``k``.
    """
    if k < 2:
        raise InvalidParameterError("k must be at least 2")
    decomposition = decomposition or truss_decomposition(graph, anchors)
    members = [e for e, t in decomposition.trussness.items() if t >= k]
    members.extend(decomposition.anchors)
    return graph.edge_subgraph(members)


def k_hull(
    graph: Graph,
    k: int,
    decomposition: Optional[TrussDecomposition] = None,
) -> Set[Edge]:
    """Return the k-hull: edges with trussness exactly ``k`` (Definition 5)."""
    decomposition = decomposition or truss_decomposition(graph)
    return decomposition.hull(k)


def k_truss_components(
    graph: Graph,
    k: int,
    decomposition: Optional[TrussDecomposition] = None,
    anchors: Iterable[Edge] = (),
) -> List[Set[Edge]]:
    """Triangle-connected components of the k-truss (Definition 9).

    Each returned set of edges induces one k-truss component: a maximal
    k-truss whose edges are pairwise triangle-connected.
    """
    truss = k_truss(graph, k, decomposition, anchors)
    return triangle_connected_components(truss)


def max_trussness(graph: Graph, decomposition: Optional[TrussDecomposition] = None) -> int:
    """The maximum trussness ``k_max`` reported for each dataset in Table III."""
    decomposition = decomposition or truss_decomposition(graph)
    return decomposition.k_max


def max_support(graph: Graph) -> int:
    """The maximum edge support ``sup_max`` reported for each dataset in Table III."""
    supports = support_map(graph)
    return max(supports.values(), default=0)


def trussness_histogram(
    graph: Graph, decomposition: Optional[TrussDecomposition] = None
) -> Dict[int, int]:
    """Number of edges per trussness value (used by Fig. 11(b))."""
    decomposition = decomposition or truss_decomposition(graph)
    histogram: Dict[int, int] = {}
    for value in decomposition.trussness.values():
        histogram[value] = histogram.get(value, 0) + 1
    return dict(sorted(histogram.items()))
