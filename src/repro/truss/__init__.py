"""Truss substrate: decomposition, trussness state, k-trusses and k-hulls.

This package implements Algorithm 1 of the paper (truss decomposition) with
two extensions needed by the ATR algorithms:

* *anchor edges* — edges whose support is treated as infinite; they are never
  peeled and therefore keep contributing triangles at every level, and
* *peeling layers* — inside each k-hull, the synchronous round in which an
  edge is peeled (``l(e)`` in the paper), which defines the deletion order
  ``e1 ≺ e2`` used by the upward-route machinery.
"""

from repro.truss.decomposition import (
    TrussDecomposition,
    truss_decomposition,
    truss_decomposition_reference,
)
from repro.truss.ktruss import (
    k_hull,
    k_truss,
    k_truss_components,
    max_support,
    max_trussness,
    trussness_histogram,
)
from repro.truss.state import ANCHOR_TRUSSNESS, TrussState

__all__ = [
    "TrussDecomposition",
    "truss_decomposition",
    "truss_decomposition_reference",
    "TrussState",
    "ANCHOR_TRUSSNESS",
    "k_truss",
    "k_hull",
    "k_truss_components",
    "max_support",
    "max_trussness",
    "trussness_histogram",
]
