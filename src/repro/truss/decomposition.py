"""Truss decomposition with anchor edges and peeling layers (Algorithm 1).

The decomposition assigns to every non-anchored edge ``e``:

* its *trussness* ``t(e)`` — the largest k such that a k-truss contains it
  (Definition 3), and
* its *layer* ``l(e)`` — the synchronous peeling round, inside the phase
  that removes the k-hull of ``t(e)``, in which ``e`` is removed.

Anchored edges are never removed: their support is conceptually ``+inf``
(Section II-A of the paper), so they keep closing triangles for the
remaining edges at every level of the peeling.

Layer semantics
---------------
Algorithm 1 in the paper removes one edge at a time and speaks of the
"i-th iteration".  We use the standard synchronous ("wave") definition:
round ``i`` of phase ``k`` removes exactly the edges whose support is at
most ``k - 2`` in the graph that remains after round ``i - 1``.  This
definition is deterministic (independent of tie-breaking within a round)
and is the one under which the upward-route characterisation of followers
(Lemma 2) holds; see DESIGN.md §3.5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from repro.graph.graph import Edge, Graph, normalize_edge
from repro.utils.errors import InvalidEdgeError, InvalidParameterError


@dataclass(frozen=True)
class TrussDecomposition:
    """Result of a (possibly anchored) truss decomposition.

    Attributes
    ----------
    trussness:
        ``t(e)`` for every non-anchored edge.
    layer:
        ``l(e)``: the synchronous peeling round (1-based) within the phase
        that removed ``e``.
    anchors:
        The anchored edges (kept forever; they have no trussness entry).
    k_max:
        The largest trussness value assigned (2 if the graph has no
        non-anchored edges in triangles; 1 for an empty graph).
    """

    trussness: Dict[Edge, int]
    layer: Dict[Edge, int]
    anchors: FrozenSet[Edge]
    k_max: int

    def hull(self, k: int) -> Set[Edge]:
        """The k-hull: all (non-anchored) edges with trussness exactly k."""
        return {edge for edge, value in self.trussness.items() if value == k}

    def hulls(self) -> Dict[int, Set[Edge]]:
        """All k-hulls keyed by k."""
        result: Dict[int, Set[Edge]] = {}
        for edge, value in self.trussness.items():
            result.setdefault(value, set()).add(edge)
        return result

    def layers_of_hull(self, k: int) -> Dict[int, Set[Edge]]:
        """The layers ``L_k^i`` of the k-hull, keyed by layer index ``i``."""
        result: Dict[int, Set[Edge]] = {}
        for edge, value in self.trussness.items():
            if value == k:
                result.setdefault(self.layer[edge], set()).add(edge)
        return result


def truss_decomposition(
    graph: Graph, anchors: Iterable[Edge] = ()
) -> TrussDecomposition:
    """Run truss decomposition of ``graph`` with the given anchored edges.

    Parameters
    ----------
    graph:
        The input graph (not modified).
    anchors:
        Edges treated as having infinite support.  They must exist in the
        graph; otherwise :class:`InvalidEdgeError` is raised.

    Returns
    -------
    TrussDecomposition

    Notes
    -----
    The running time is ``O(m^{1.5})`` triangle-listing time plus the cost of
    the per-phase scans, matching the complexity quoted in the paper for
    Algorithm 1.
    """
    anchor_set: FrozenSet[Edge] = frozenset(graph.require_edge(e) for e in anchors)

    # Live adjacency copy; edges are removed from it as they are peeled.
    adjacency: Dict[object, Set[object]] = {u: set(graph.neighbors(u)) for u in graph.vertices()}

    support: Dict[Edge, int] = {}
    for u, v in graph.edges():
        edge = normalize_edge(u, v)
        small, large = (u, v) if len(adjacency[u]) <= len(adjacency[v]) else (v, u)
        support[edge] = sum(1 for w in adjacency[small] if w in adjacency[large])

    remaining: Set[Edge] = set(support)
    non_anchor_remaining: Set[Edge] = remaining - anchor_set

    trussness: Dict[Edge, int] = {}
    layer: Dict[Edge, int] = {}

    def remove_edge(edge: Edge) -> List[Edge]:
        """Remove ``edge`` from the live structures; return edges whose support dropped."""
        u, v = edge
        affected: List[Edge] = []
        common = adjacency[u] & adjacency[v]
        for w in common:
            for other in (normalize_edge(u, w), normalize_edge(v, w)):
                if other in remaining:
                    support[other] -= 1
                    affected.append(other)
        adjacency[u].discard(v)
        adjacency[v].discard(u)
        remaining.discard(edge)
        non_anchor_remaining.discard(edge)
        return affected

    k = 2
    while non_anchor_remaining:
        threshold = k - 2
        frontier = sorted(e for e in non_anchor_remaining if support[e] <= threshold)
        layer_index = 0
        scheduled: Set[Edge] = set(frontier)
        while frontier:
            layer_index += 1
            next_frontier: List[Edge] = []
            for edge in frontier:
                trussness[edge] = k
                layer[edge] = layer_index
                for other in remove_edge(edge):
                    if (
                        other not in scheduled
                        and other in non_anchor_remaining
                        and support[other] <= threshold
                    ):
                        scheduled.add(other)
                        next_frontier.append(other)
            frontier = sorted(next_frontier)
        k += 1

    k_max = max(trussness.values(), default=1)
    return TrussDecomposition(
        trussness=trussness, layer=layer, anchors=anchor_set, k_max=k_max
    )


def trussness_gain(
    before: TrussDecomposition, after: TrussDecomposition, exclude: Iterable[Edge] = ()
) -> int:
    """Total trussness gain between two decompositions (Definition 4).

    ``exclude`` is the anchor set A; anchored edges contribute no gain.
    Edges that are anchored in ``after`` but not listed in ``exclude`` are
    also skipped (they have no trussness in ``after``).
    """
    excluded = {normalize_edge(*e) for e in exclude} | set(after.anchors)
    gain = 0
    for edge, old_value in before.trussness.items():
        if edge in excluded:
            continue
        new_value = after.trussness.get(edge)
        if new_value is None:
            raise InvalidEdgeError(edge, f"edge {edge!r} missing from the second decomposition")
        if new_value < old_value:
            raise InvalidParameterError(
                f"trussness of {edge!r} decreased from {old_value} to {new_value}; "
                "anchoring can never decrease trussness"
            )
        gain += new_value - old_value
    return gain
