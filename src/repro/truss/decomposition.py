"""Truss decomposition with anchor edges and peeling layers (Algorithm 1).

The decomposition assigns to every non-anchored edge ``e``:

* its *trussness* ``t(e)`` — the largest k such that a k-truss contains it
  (Definition 3), and
* its *layer* ``l(e)`` — the synchronous peeling round, inside the phase
  that removes the k-hull of ``t(e)``, in which ``e`` is removed.

Anchored edges are never removed: their support is conceptually ``+inf``
(Section II-A of the paper), so they keep closing triangles for the
remaining edges at every level of the peeling.

Layer semantics
---------------
Algorithm 1 in the paper removes one edge at a time and speaks of the
"i-th iteration".  We use the standard synchronous ("wave") definition:
round ``i`` of phase ``k`` removes exactly the edges whose support is at
most ``k - 2`` in the graph that remains after round ``i - 1``.  This
definition is deterministic (independent of tie-breaking within a round)
and is the one under which the upward-route characterisation of followers
(Lemma 2) holds; see DESIGN.md §3.5.
"""

from __future__ import annotations

import math
from functools import cached_property
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.graph.graph import Edge, Graph, normalize_edge
from repro.graph.index import GraphIndex
from repro.truss.peel import peel_trussness_fast
from repro.utils.errors import InvalidEdgeError, InvalidParameterError


class TrussDecomposition:
    """Result of a (possibly anchored) truss decomposition.

    Attributes
    ----------
    trussness:
        ``t(e)`` for every non-anchored edge.
    layer:
        ``l(e)``: the synchronous peeling round (1-based) within the phase
        that removed ``e``.
    anchors:
        The anchored edges (kept forever; they have no trussness entry).
    k_max:
        The largest trussness value assigned (2 if the graph has no
        non-anchored edges in triangles; 1 for an empty graph).

    The object behaves like the frozen dataclass it used to be (keyword
    construction, equality over the four attributes above), but the kernel
    paths construct it through :meth:`from_dense` with the tuple-domain
    dicts *deferred*: cold decompositions return without ever paying the
    ``m``-entry dict builds, and the dicts materialise from the dense
    arrays on first access.  The dense views are treated as immutable after
    construction (the overlay contract), so materialising late always
    yields the same dicts an eager build would have.
    """

    def __init__(
        self,
        trussness: Optional[Dict[Edge, int]] = None,
        layer: Optional[Dict[Edge, int]] = None,
        anchors: FrozenSet[Edge] = frozenset(),
        k_max: int = 1,
        dense_views: object = None,
    ) -> None:
        self._trussness = trussness
        self._layer = layer
        self.anchors = anchors
        self.k_max = k_max
        #: Dense per-edge-id views ``(index, trussness, layer, anchor_mask)``
        #: attached by the kernel decomposition (``None`` when constructed by
        #: the reference implementation or by hand).  Anchored edges hold
        #: ``inf`` in the arrays.  A cache, not data: excluded from equality.
        self.dense_views = dense_views
        self._edge_of: Optional[Sequence[Edge]] = None

    @classmethod
    def from_dense(
        cls,
        edge_of: Sequence[Edge],
        trussness_arr: List[float],
        layer_arr: List[float],
        anchors: FrozenSet[Edge],
        k_max: int,
        dense_views: object,
    ) -> "TrussDecomposition":
        """Kernel constructor: dense per-eid arrays now, dicts on demand.

        ``edge_of`` maps dense edge ids to canonical tuples; anchors carry
        ``inf`` in the arrays and are dropped from the dicts when they
        materialise.
        """
        result = cls(anchors=anchors, k_max=k_max, dense_views=dense_views)
        result._edge_of = edge_of
        return result

    def _materialize(self) -> None:
        edge_of = self._edge_of
        index, trussness_arr, layer_arr, _mask = self.dense_views
        # C-level dict construction over all edges, then drop the (few)
        # anchors, which carry inf in the dense views.
        trussness: Dict[Edge, int] = dict(zip(edge_of, trussness_arr))
        layer: Dict[Edge, int] = dict(zip(edge_of, layer_arr))
        for edge in self.anchors:
            del trussness[edge]
            del layer[edge]
        self._trussness = trussness
        self._layer = layer

    @property
    def trussness(self) -> Dict[Edge, int]:
        if self._trussness is None:
            self._materialize()
        return self._trussness

    @property
    def layer(self) -> Dict[Edge, int]:
        if self._layer is None:
            self._materialize()
        return self._layer

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TrussDecomposition):
            return NotImplemented
        return (
            self.anchors == other.anchors
            and self.k_max == other.k_max
            and self.trussness == other.trussness
            and self.layer == other.layer
        )

    __hash__ = None  # mutable caches inside; matches the old unhashable dataclass

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"TrussDecomposition(edges={len(self.trussness)}, "
            f"anchors={len(self.anchors)}, k_max={self.k_max})"
        )

    @cached_property
    def _hull_index(self) -> Dict[int, FrozenSet[Edge]]:
        """Edges grouped by trussness, computed once (the decomposition is
        frozen, so the grouping can never go stale)."""
        grouped: Dict[int, Set[Edge]] = {}
        for edge, value in self.trussness.items():
            grouped.setdefault(value, set()).add(edge)
        return {k: frozenset(members) for k, members in grouped.items()}

    @cached_property
    def _layer_index(self) -> Dict[int, Dict[int, FrozenSet[Edge]]]:
        """Hull edges further grouped by peeling layer, computed once."""
        grouped: Dict[int, Dict[int, Set[Edge]]] = {}
        layer = self.layer
        for edge, value in self.trussness.items():
            grouped.setdefault(value, {}).setdefault(layer[edge], set()).add(edge)
        return {
            k: {i: frozenset(members) for i, members in layers.items()}
            for k, layers in grouped.items()
        }

    def hull(self, k: int) -> Set[Edge]:
        """The k-hull: all (non-anchored) edges with trussness exactly k."""
        return set(self._hull_index.get(k, frozenset()))

    def hulls(self) -> Dict[int, Set[Edge]]:
        """All k-hulls keyed by k."""
        return {k: set(members) for k, members in self._hull_index.items()}

    def layers_of_hull(self, k: int) -> Dict[int, Set[Edge]]:
        """The layers ``L_k^i`` of the k-hull, keyed by layer index ``i``."""
        return {i: set(members) for i, members in self._layer_index.get(k, {}).items()}


def truss_decomposition(
    graph: Graph, anchors: Iterable[Edge] = ()
) -> TrussDecomposition:
    """Run truss decomposition of ``graph`` with the given anchored edges.

    Parameters
    ----------
    graph:
        The input graph (not modified).
    anchors:
        Edges treated as having infinite support.  They must exist in the
        graph; otherwise :class:`InvalidEdgeError` is raised.

    Returns
    -------
    TrussDecomposition

    Notes
    -----
    Runs on the integer-indexed kernel (:mod:`repro.graph.index`): the
    triangle lists are computed once per graph snapshot (``O(m^{1.5})``) and
    shared by every subsequent decomposition of the same graph, so anchored
    re-decompositions — the inner loop of BASE and of every greedy round —
    only pay for the bucket peeling itself.  The result is identical to
    :func:`truss_decomposition_reference` (the test-suite asserts this on
    random graphs, including anchored cases).
    """
    anchor_set: FrozenSet[Edge] = frozenset(graph.require_edge(e) for e in anchors)
    index = GraphIndex.of(graph)
    trussness_arr, layer_arr, k_max = peel_trussness_fast(
        index, [index.eid_of[e] for e in anchor_set]
    )
    # Re-purpose the kernel arrays as the dense per-eid views shared with the
    # follower machinery and the component tree (anchors switch from the
    # peeling sentinel 0 to the inf the state-level API reports).  The
    # tuple-domain dicts materialise lazily from these views on first access.
    anchor_mask = bytearray(index.num_edges)
    if anchor_set:
        eid_of = index.eid_of
        inf = math.inf
        for edge in anchor_set:
            eid = eid_of[edge]
            anchor_mask[eid] = 1
            trussness_arr[eid] = inf
            layer_arr[eid] = inf
    return TrussDecomposition.from_dense(
        index.edge_of,
        trussness_arr,
        layer_arr,
        anchor_set,
        k_max,
        (index, trussness_arr, layer_arr, anchor_mask),
    )


def truss_decomposition_reference(
    graph: Graph, anchors: Iterable[Edge] = ()
) -> TrussDecomposition:
    """Tuple-domain reference implementation of Algorithm 1.

    This is the original (pre-kernel) implementation, kept as the ground
    truth for the equivalence tests in ``tests/test_graph_index.py`` and as
    the "before" timing of ``benchmarks/bench_kernel.py``.  It is
    deliberately untouched: live adjacency sets, per-removal set
    intersections and per-phase scans over the remaining edges.
    """
    anchor_set: FrozenSet[Edge] = frozenset(graph.require_edge(e) for e in anchors)

    # Live adjacency copy; edges are removed from it as they are peeled.
    adjacency: Dict[object, Set[object]] = {u: set(graph.neighbors(u)) for u in graph.vertices()}

    support: Dict[Edge, int] = {}
    for u, v in graph.edges():
        edge = normalize_edge(u, v)
        small, large = (u, v) if len(adjacency[u]) <= len(adjacency[v]) else (v, u)
        support[edge] = sum(1 for w in adjacency[small] if w in adjacency[large])

    remaining: Set[Edge] = set(support)
    non_anchor_remaining: Set[Edge] = remaining - anchor_set

    trussness: Dict[Edge, int] = {}
    layer: Dict[Edge, int] = {}

    def remove_edge(edge: Edge) -> List[Edge]:
        """Remove ``edge`` from the live structures; return edges whose support dropped."""
        u, v = edge
        affected: List[Edge] = []
        common = adjacency[u] & adjacency[v]
        for w in common:
            for other in (normalize_edge(u, w), normalize_edge(v, w)):
                if other in remaining:
                    support[other] -= 1
                    affected.append(other)
        adjacency[u].discard(v)
        adjacency[v].discard(u)
        remaining.discard(edge)
        non_anchor_remaining.discard(edge)
        return affected

    k = 2
    while non_anchor_remaining:
        threshold = k - 2
        frontier = sorted(e for e in non_anchor_remaining if support[e] <= threshold)
        layer_index = 0
        scheduled: Set[Edge] = set(frontier)
        while frontier:
            layer_index += 1
            next_frontier: List[Edge] = []
            for edge in frontier:
                trussness[edge] = k
                layer[edge] = layer_index
                for other in remove_edge(edge):
                    if (
                        other not in scheduled
                        and other in non_anchor_remaining
                        and support[other] <= threshold
                    ):
                        scheduled.add(other)
                        next_frontier.append(other)
            frontier = sorted(next_frontier)
        k += 1

    k_max = max(trussness.values(), default=1)
    return TrussDecomposition(
        trussness=trussness, layer=layer, anchors=anchor_set, k_max=k_max
    )


def trussness_gain(
    before: TrussDecomposition, after: TrussDecomposition, exclude: Iterable[Edge] = ()
) -> int:
    """Total trussness gain between two decompositions (Definition 4).

    ``exclude`` is the anchor set A; anchored edges contribute no gain.
    Edges that are anchored in ``after`` but not listed in ``exclude`` are
    also skipped (they have no trussness in ``after``).
    """
    excluded = {normalize_edge(*e) for e in exclude} | set(after.anchors)
    gain = 0
    for edge, old_value in before.trussness.items():
        if edge in excluded:
            continue
        new_value = after.trussness.get(edge)
        if new_value is None:
            raise InvalidEdgeError(edge, f"edge {edge!r} missing from the second decomposition")
        if new_value < old_value:
            raise InvalidParameterError(
                f"trussness of {edge!r} decreased from {old_value} to {new_value}; "
                "anchoring can never decrease trussness"
            )
        gain += new_value - old_value
    return gain
