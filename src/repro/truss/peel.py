"""Vectorised (and optionally numba-compiled) truss peeling backends.

:func:`repro.graph.index.peel_trussness` is the pure-Python scalar kernel:
one Python iteration per removed edge and per incident triangle.  This
module provides array-domain twins with *byte-identical* results:

* :func:`peel_trussness_arrays` — NumPy wave peeling over
  :class:`~repro.graph.csr.CSRArrays`.  Each synchronous wave is a handful
  of array operations: mask the frontier, gather the frontier's hit-table
  rows, scatter-subtract the support decrements with ``bincount``, and
  re-threshold only the touched edges.  Python-level iteration is per
  *wave*, never per edge.
* an optional ``numba`` ``@njit`` twin of the scalar loop, compiled lazily
  on first use.  numba is an optional extra (``pip install .[fast]``); when
  it is missing the backend falls back cleanly.

Wave equivalence
----------------
The scalar kernel processes a wave's frontier in ascending dense-edge-id
order and checks ``alive[a] and alive[b]`` *at processing time*, so edges
removed earlier in the same wave no longer decrement.  The vectorised peel
reproduces this without sequential processing via the order-independent
rule: the hit-table row ``(base; a, b)`` of a frontier edge ``base``
applies its decrements iff neither ``a`` nor ``b`` died in an earlier wave
and, for each of them that is in the *current* wave, its id is greater
than ``base`` — i.e. exactly the rows the scalar loop executes.  Supports
of edges removed in the same wave may transiently differ, but those edges
are dead either way; every surviving edge sees identical decrements, so
frontiers, layers, trussness and ``k_max`` all match byte for byte (the
generator-sweep equivalence suite asserts this).

Backend selection
-----------------
``REPRO_PEEL_BACKEND`` (or :func:`set_peel_backend`) picks the backend:
``auto`` (default: vectorised when NumPy is importable, else the scalar
kernel), ``vectorized``, ``numba`` or ``python``.  Unavailable backends
degrade: ``numba`` → ``vectorized`` → ``python``.
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence, Tuple

from repro.graph.csr import HAVE_NUMPY, CSRArrays
from repro.graph.index import GraphIndex, peel_trussness
from repro.obs.metrics import default_registry, now
from repro.utils.errors import InvalidParameterError

if HAVE_NUMPY:
    import numpy as _np
else:  # pragma: no cover - the test image ships numpy
    _np = None

__all__ = [
    "peel_trussness_fast",
    "peel_trussness_arrays",
    "set_peel_backend",
    "get_peel_backend",
    "resolve_peel_backend",
    "numba_available",
]

PEEL_BACKENDS = ("auto", "vectorized", "numba", "python")

_backend: str = "auto"
_env = os.environ.get("REPRO_PEEL_BACKEND", "").strip().lower()
if _env in PEEL_BACKENDS:
    _backend = _env


def set_peel_backend(name: str) -> str:
    """Select the peeling backend; returns the previous setting.

    ``auto`` resolves per call (see :func:`resolve_peel_backend`); naming an
    unavailable backend is allowed and degrades cleanly at call time, so a
    deployment can pin ``numba`` and still run where it is not installed.
    """
    global _backend
    name = name.strip().lower()
    if name not in PEEL_BACKENDS:
        raise InvalidParameterError(
            f"unknown peel backend {name!r}; choose one of {', '.join(PEEL_BACKENDS)}"
        )
    previous = _backend
    _backend = name
    return previous


def get_peel_backend() -> str:
    """The configured backend name (possibly ``auto``)."""
    return _backend


def numba_available() -> bool:
    """True when the optional numba extra is importable."""
    try:
        import numba  # noqa: F401
    except ImportError:
        return False
    return True


def resolve_peel_backend() -> str:
    """The backend :func:`peel_trussness_fast` will actually run.

    Degradation chain: ``numba`` needs both numba and NumPy and falls back
    to ``vectorized``; ``vectorized`` needs NumPy and falls back to
    ``python``; ``auto`` is ``vectorized`` with the same fallback.
    """
    backend = _backend
    if backend == "numba":
        if HAVE_NUMPY and numba_available():
            return "numba"
        backend = "vectorized"
    if backend in ("auto", "vectorized"):
        return "vectorized" if HAVE_NUMPY else "python"
    return backend


# ---------------------------------------------------------------------------
# NumPy wave peel
# ---------------------------------------------------------------------------
def peel_trussness_arrays(
    csr: CSRArrays, anchor_eids: Sequence[int] = ()
) -> Tuple[List[int], List[int], int]:
    """Vectorised bucketed peel over :class:`CSRArrays` (Algorithm 1).

    Same contract as :func:`repro.graph.index.peel_trussness`: returns
    ``(trussness, layer, k_max)`` as plain Python lists indexed by dense
    edge id, with anchored edges keeping the sentinel value 0.
    """
    m = csr.num_edges
    if m == 0:
        return [], [], 1
    support = csr.support.copy()
    hit_offsets = csr.hit_offsets
    hit_counts = _np.diff(hit_offsets)
    hit_e1 = csr.hit_e1
    hit_e2 = csr.hit_e2

    alive = _np.ones(m, dtype=bool)
    is_anchor = _np.zeros(m, dtype=bool)
    anchor_list = list(anchor_eids)
    if anchor_list:
        is_anchor[anchor_list] = True
    remaining = int(m - int(is_anchor.sum()))

    trussness = _np.zeros(m, dtype=_np.int64)
    layer = _np.zeros(m, dtype=_np.int64)
    in_wave = _np.zeros(m, dtype=bool)
    # active == alive and not anchored (the peelable frontier candidates);
    # maintained incrementally alongside ``alive``.
    active = ~is_anchor

    k = 2
    k_max = 1
    while remaining:
        threshold = k - 2
        frontier = _np.nonzero(active & (support <= threshold))[0]
        layer_index = 0
        while frontier.size:
            layer_index += 1
            trussness[frontier] = k
            layer[frontier] = layer_index
            in_wave[frontier] = True

            # Ragged gather of the frontier's hit-table rows (one repeat:
            # arange + per-run delta).
            counts = hit_counts[frontier]
            total = int(counts.sum())
            if total:
                seg_end = _np.cumsum(counts)
                rows = _np.arange(total, dtype=_np.int64) + _np.repeat(
                    hit_offsets[frontier] - (seg_end - counts), counts
                )
                base = _np.repeat(frontier, counts)
                a = hit_e1[rows]
                b = hit_e2[rows]
                ok = (
                    alive[a]
                    & alive[b]
                    & (~in_wave[a] | (a > base))
                    & (~in_wave[b] | (b > base))
                )
                touched = _np.concatenate([a[ok], b[ok]])
            else:
                touched = _np.zeros(0, dtype=_np.int64)

            remaining -= int(frontier.size)
            alive[frontier] = False
            active[frontier] = False
            in_wave[frontier] = False
            if touched.size:
                # Deduplicated decrement targets with multiplicities — the
                # touched arrays are wave-local and small, so this stays
                # O(|touched| log |touched|) instead of O(m) per wave.  The
                # unique array is sorted, so the surviving candidates are
                # the next frontier directly.
                uniq, cnts = _np.unique(touched, return_counts=True)
                support[uniq] -= cnts
                frontier = uniq[active[uniq] & (support[uniq] <= threshold)]
            else:
                frontier = _np.zeros(0, dtype=_np.int64)
        if layer_index:
            k_max = k
        k += 1

    return trussness.tolist(), layer.tolist(), int(k_max)


# ---------------------------------------------------------------------------
# Optional numba twin (compiled lazily; absence degrades cleanly)
# ---------------------------------------------------------------------------
def _scalar_peel_on_arrays(m, support, hit_offsets, hit_e1, hit_e2, is_anchor):
    """The scalar peel loop over flat arrays — the function numba compiles.

    Written in the numba nopython subset (plain loops, preallocated int64
    work arrays, no Python containers) but also runnable uncompiled, which
    is how the equivalence suite validates this exact code path on images
    without numba.  Semantics match :func:`repro.graph.index.peel_trussness`
    statement for statement: ascending frontier order, aliveness checked at
    processing time, threshold re-checks at decrement time.
    """
    trussness = _np.zeros(m, dtype=_np.int64)
    layer = _np.zeros(m, dtype=_np.int64)
    alive = _np.ones(m, dtype=_np.bool_)
    scheduled = _np.zeros(m, dtype=_np.bool_)
    remaining = 0
    for e in range(m):
        if not is_anchor[e]:
            remaining += 1
    frontier = _np.empty(m, dtype=_np.int64)
    nxt = _np.empty(m, dtype=_np.int64)
    k = 2
    k_max = 1
    while remaining > 0:
        threshold = k - 2
        fn = 0
        for e in range(m):
            if alive[e] and not scheduled[e] and not is_anchor[e] and support[e] <= threshold:
                scheduled[e] = True
                frontier[fn] = e
                fn += 1
        layer_index = 0
        while fn > 0:
            layer_index += 1
            nn = 0
            for idx in range(fn):
                eid = frontier[idx]
                trussness[eid] = k
                layer[eid] = layer_index
                alive[eid] = False
                remaining -= 1
                for row in range(hit_offsets[eid], hit_offsets[eid + 1]):
                    a = hit_e1[row]
                    b = hit_e2[row]
                    if alive[a] and alive[b]:
                        support[a] -= 1
                        support[b] -= 1
                        if (
                            not is_anchor[a]
                            and not scheduled[a]
                            and support[a] <= threshold
                        ):
                            scheduled[a] = True
                            nxt[nn] = a
                            nn += 1
                        if (
                            not is_anchor[b]
                            and not scheduled[b]
                            and support[b] <= threshold
                        ):
                            scheduled[b] = True
                            nxt[nn] = b
                            nn += 1
            frontier[:nn] = _np.sort(nxt[:nn])
            fn = nn
        if layer_index:
            k_max = k
        k += 1
    return trussness, layer, k_max


_numba_kernel = None
_numba_failed = False


def _get_numba_kernel():
    """Compile (once) and return the ``@njit`` scalar peel, or ``None``."""
    global _numba_kernel, _numba_failed
    if _numba_kernel is not None:
        return _numba_kernel
    if _numba_failed:
        return None
    try:
        import numba
    except ImportError:
        _numba_failed = True
        return None
    _numba_kernel = numba.njit(cache=True)(_scalar_peel_on_arrays)
    return _numba_kernel


def _peel_numba(
    csr: CSRArrays, anchor_eids: Sequence[int]
) -> Optional[Tuple[List[int], List[int], int]]:
    kernel = _get_numba_kernel()
    if kernel is None:
        return None
    m = csr.num_edges
    if m == 0:
        return [], [], 1
    is_anchor = _np.zeros(m, dtype=_np.bool_)
    anchor_list = list(anchor_eids)
    if anchor_list:
        is_anchor[anchor_list] = True
    trussness, layer, k_max = kernel(
        m,
        csr.support.copy(),
        csr.hit_offsets,
        csr.hit_e1,
        csr.hit_e2,
        is_anchor,
    )
    return trussness.tolist(), layer.tolist(), int(k_max)


# ---------------------------------------------------------------------------
# Dispatcher
# ---------------------------------------------------------------------------
def peel_trussness_fast(
    index: GraphIndex, anchor_eids: Sequence[int] = ()
) -> Tuple[List[int], List[int], int]:
    """Peel ``index`` with the best available backend (see module docs).

    Drop-in replacement for :func:`repro.graph.index.peel_trussness` — same
    arguments, same ``(trussness, layer, k_max)`` result, byte-identical
    values.  Indexes built without NumPy carry no array form and always run
    the scalar kernel.

    When a process-global metrics registry is armed
    (:func:`repro.obs.metrics.set_default_registry`) each peel's wall time
    is observed into a per-backend ``kernel.peel_s.<backend>`` histogram;
    unarmed, the cost is one module-global read and a ``None`` check.
    """
    registry = default_registry()
    if registry is None:
        return _peel_dispatch(index, anchor_eids)
    start = now()
    result = _peel_dispatch(index, anchor_eids)
    backend = resolve_peel_backend() if index.csr is not None else "python"
    registry.histogram(f"kernel.peel_s.{backend}").observe(now() - start)
    return result


def _peel_dispatch(
    index: GraphIndex, anchor_eids: Sequence[int] = ()
) -> Tuple[List[int], List[int], int]:
    csr = index.csr
    if csr is None:
        return peel_trussness(index, anchor_eids)
    backend = resolve_peel_backend()
    if backend == "python":
        return peel_trussness(index, anchor_eids)
    if backend == "numba":
        result = _peel_numba(csr, anchor_eids)
        if result is not None:
            return result
    return peel_trussness_arrays(csr, anchor_eids)
