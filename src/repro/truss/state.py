"""Trussness state: graph + anchors + trussness + layers in one queryable object.

Every component of the ATR solution (follower computation, upward routes,
truss component tree, greedy solvers) needs the same bundle of information:
the graph, the current anchor set, the trussness ``t(e)`` and layer ``l(e)``
of each non-anchored edge, and the deletion order ``e1 ≺ e2`` derived from
them.  :class:`TrussState` packages this bundle and offers the queries the
paper's pseudo-code performs on it.

Anchored edges are modelled with an *infinite* trussness
(:data:`ANCHOR_TRUSSNESS`), matching the paper's convention that an anchor
is "persistently in any truss structure".
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from repro.graph.graph import Edge, Graph, Vertex, normalize_edge
from repro.graph.index import GraphIndex
from repro.graph.triangles import common_neighbors
from repro.truss.decomposition import TrussDecomposition, truss_decomposition
from repro.utils.errors import InvalidEdgeError, InvalidParameterError

#: Trussness value used for anchored edges in comparisons (never peeled).
ANCHOR_TRUSSNESS = math.inf


@dataclass
class TrussState:
    """Graph, anchor set and the corresponding (anchored) truss decomposition."""

    graph: Graph
    anchors: FrozenSet[Edge]
    decomposition: TrussDecomposition

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def compute(cls, graph: Graph, anchors: Iterable[Edge] = ()) -> "TrussState":
        """Run an anchored truss decomposition and wrap it in a state object."""
        anchor_set = frozenset(graph.require_edge(e) for e in anchors)
        decomposition = truss_decomposition(graph, anchor_set)
        return cls(graph=graph, anchors=anchor_set, decomposition=decomposition)

    def with_anchor(self, edge: Edge) -> "TrussState":
        """Return a fresh state with ``edge`` added to the anchor set (recomputed)."""
        edge = self.graph.require_edge(edge)
        return TrussState.compute(self.graph, self.anchors | {edge})

    def with_anchors(self, edges: Iterable[Edge]) -> "TrussState":
        """Return a fresh state with all ``edges`` added to the anchor set."""
        new_anchors = self.anchors | {self.graph.require_edge(e) for e in edges}
        return TrussState.compute(self.graph, new_anchors)

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    def is_anchor(self, edge: Edge) -> bool:
        return normalize_edge(*edge) in self.anchors

    def trussness(self, edge: Edge) -> float:
        """``t(e)``; anchored edges report :data:`ANCHOR_TRUSSNESS`."""
        edge = normalize_edge(*edge)
        if edge in self.anchors:
            return ANCHOR_TRUSSNESS
        try:
            return self.decomposition.trussness[edge]
        except KeyError as exc:
            raise InvalidEdgeError(edge) from exc

    def layer(self, edge: Edge) -> float:
        """``l(e)``; anchored edges report ``+inf`` (they are never peeled)."""
        edge = normalize_edge(*edge)
        if edge in self.anchors:
            return math.inf
        try:
            return self.decomposition.layer[edge]
        except KeyError as exc:
            raise InvalidEdgeError(edge) from exc

    def precedes(self, first: Edge, second: Edge) -> bool:
        """The deletion order ``first ≺ second`` (Section III-B).

        ``e1 ≺ e2`` iff ``t(e1) < t(e2)``, or ``t(e1) = t(e2)`` and
        ``l(e1) <= l(e2)``.  Anchored edges compare as "last" (infinite
        trussness), so every non-anchored edge precedes every anchor.
        """
        t1, t2 = self.trussness(first), self.trussness(second)
        if t1 != t2:
            return t1 < t2
        return self.layer(first) <= self.layer(second)

    @property
    def k_max(self) -> int:
        return self.decomposition.k_max

    def non_anchor_edges(self) -> Iterator[Edge]:
        """All edges that are not anchored (candidate anchors / gain carriers)."""
        for edge in self.graph.edges():
            if edge not in self.anchors:
                yield edge

    # ------------------------------------------------------------------
    # Triangle queries used by the follower machinery
    # ------------------------------------------------------------------
    @property
    def index(self) -> GraphIndex:
        """The shared integer-indexed kernel snapshot of the graph.

        The index is cached on the graph itself (invalidated by mutation), so
        every state, follower computation and greedy round over the same
        graph shares one set of precomputed triangle lists.
        """
        return GraphIndex.of(self.graph)

    def kernel_views(self) -> Tuple[GraphIndex, List[float], List[float], bytearray]:
        """Dense per-edge-id views ``(index, trussness, layer, anchor_mask)``.

        ``trussness[eid]`` / ``layer[eid]`` mirror :meth:`trussness` /
        :meth:`layer` (anchored edges hold ``inf``), and ``anchor_mask`` is a
        0/1 byte per edge.  Built once per state (the decomposition is fixed)
        and shared by the follower machinery and the component tree, which
        replaces per-query tuple hashing with list indexing.  Treat all three
        as read-only.
        """
        index = GraphIndex.of(self.graph)
        attached = self.decomposition.dense_views
        if attached is not None and attached[0] is index:
            return attached
        cached = getattr(self, "_kernel_views", None)
        if cached is not None and cached[0] is index:
            return cached
        m = index.num_edges
        eid_of = index.eid_of
        trussness: List[float] = [math.inf] * m
        layer: List[float] = [math.inf] * m
        layer_dict = self.decomposition.layer
        for edge, value in self.decomposition.trussness.items():
            eid = eid_of[edge]
            trussness[eid] = value
            layer[eid] = layer_dict[edge]
        anchor_mask = bytearray(m)
        for edge in self.anchors:
            anchor_mask[eid_of[edge]] = 1
        views = (index, trussness, layer, anchor_mask)
        self._kernel_views = views
        return views

    def triangle_list(self, edge: Edge) -> List[Tuple[Edge, Edge, Vertex]]:
        """The triangles through ``edge`` as a cached list (do not mutate).

        This is the hot-path variant of :meth:`triangles`: the id->tuple
        conversion happens once per edge per graph snapshot, so the repeated
        queries of the support-check / retract machinery cost a list lookup.
        """
        index = self.index
        return index.triangle_tuples(index.eid_of[self.graph.require_edge(edge)])

    def triangles(self, edge: Edge) -> Iterator[Tuple[Edge, Edge, Vertex]]:
        """Yield ``(edge_uw, edge_vw, w)`` for every triangle through ``edge``."""
        return iter(self.triangle_list(edge))

    def _triangles_reference(self, edge: Edge) -> Iterator[Tuple[Edge, Edge, Vertex]]:
        """Pre-kernel triangle query (per-call set intersection); kept for the
        equivalence tests and the before/after benchmark harness."""
        u, v = self.graph.require_edge(edge)
        for w in common_neighbors(self.graph, u, v):
            yield (normalize_edge(u, w), normalize_edge(v, w), w)

    def neighbor_edges(self, edge: Edge) -> Set[Edge]:
        """All edges sharing at least one triangle with ``edge``."""
        result: Set[Edge] = set()
        for e1, e2, _w in self.triangle_list(edge):
            result.add(e1)
            result.add(e2)
        return result

    # ------------------------------------------------------------------
    # Gain bookkeeping
    # ------------------------------------------------------------------
    def trussness_gain_from(self, baseline: "TrussState") -> int:
        """Total trussness gain of this state relative to ``baseline``.

        The sum runs over edges that are not anchored in *this* state
        (Definition 4: edges of ``E \\ A``).
        """
        gain = 0
        for edge, old_value in baseline.decomposition.trussness.items():
            if edge in self.anchors:
                continue
            new_value = self.decomposition.trussness.get(edge)
            if new_value is None:
                raise InvalidEdgeError(edge)
            if new_value < old_value:
                raise InvalidParameterError(
                    f"trussness of {edge!r} decreased; anchoring cannot do that"
                )
            gain += new_value - old_value
        return gain

    def followers_relative_to(self, baseline: "TrussState") -> Set[Edge]:
        """Edges whose trussness is strictly larger than in ``baseline``.

        Used as the ground-truth follower computation: anchor an edge,
        recompute the decomposition, and diff.
        """
        result: Set[Edge] = set()
        for edge, old_value in baseline.decomposition.trussness.items():
            if edge in self.anchors:
                continue
            if self.decomposition.trussness.get(edge, old_value) > old_value:
                result.add(edge)
        return result

    def trussness_values(self) -> Dict[Edge, int]:
        """A copy of the trussness mapping for non-anchored edges."""
        return dict(self.decomposition.trussness)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"TrussState(n={self.graph.num_vertices}, m={self.graph.num_edges}, "
            f"anchors={len(self.anchors)}, k_max={self.k_max})"
        )
