"""The metamorphic/differential oracle run per sampled world point.

One call to :func:`check_world_point` asserts the engine's full invariant
bundle against a point's graph and anchor schedule:

``incremental_repeel``
    After every committed anchor, the forced-incremental engine state must
    equal a from-scratch full decomposition — trussness, peeling layers,
    anchor mask and ``k_max``, all byte-identical.
``tree_patch``
    The incrementally patched component tree must be structurally identical
    to a tree rebuilt from the post-commit state.
``reuse_decision``
    The patch-assembled :meth:`SolverEngine.take_reuse_decision` must equal
    the classic before/after tree diff of a rebuild-mode twin engine.
``candidate_heap``
    GAS with the candidate heap must return byte-identical anchors, gains
    and followers to the full-scan reference across tree modes.
``peel_backends``
    Every peel backend — the scalar reference, the vectorised wave peel,
    the uncompiled numba twin and (when installed) the compiled twin — must
    produce identical ``(trussness, layer, k_max)`` triples.

A failed check raises :class:`InvariantViolation`, whose message embeds the
single self-contained replay line::

    python -m repro.cli world --replay "<point-spec>"

so any fuzzed failure reproduces from one pasted command.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core import engine as engine_module
from repro.core.component_tree import TrussComponentTree
from repro.graph.graph import Graph
from repro.graph.index import GraphIndex, peel_trussness
from repro.truss import peel as peel_module
from repro.truss.state import TrussState
from repro.utils.errors import ReproError
from repro.world.axes import WorldPoint

__all__ = [
    "INVARIANTS",
    "InvariantReport",
    "InvariantViolation",
    "check_world_point",
    "replay_command",
    "tree_signature",
]

#: Names of the oracle's checks, in execution order.
INVARIANTS: Tuple[str, ...] = (
    "incremental_repeel",
    "tree_patch",
    "reuse_decision",
    "candidate_heap",
    "peel_backends",
)

_ALWAYS_INCREMENTAL = math.inf


def replay_command(point: WorldPoint) -> str:
    """The one-line command that reproduces a failure of ``point``."""
    return f'python -m repro.cli world --replay "{point.spec()}"'


class InvariantViolation(ReproError):
    """An engine invariant failed on a sampled world point."""

    def __init__(self, point: WorldPoint, invariant: str, detail: str) -> None:
        self.point = point
        self.invariant = invariant
        self.detail = detail
        super().__init__(
            f"invariant {invariant!r} violated on world point {point.spec()!r}: "
            f"{detail}\n  replay: {replay_command(point)}"
        )


@dataclass(frozen=True)
class InvariantReport:
    """What one :func:`check_world_point` pass covered (all checks passed)."""

    point: WorldPoint
    num_vertices: int
    num_edges: int
    schedule_length: int
    checks: Tuple[str, ...]


def tree_signature(tree: TrussComponentTree):
    """Everything that defines a kernel-built tree, in comparable form."""
    nodes = {
        nid: (node.k, node.edges, node.edge_ids, node.parent, frozenset(node.children))
        for nid, node in tree.nodes.items()
    }
    m = tree.state.index.num_edges
    sla = tuple(frozenset(tree.sla_sets[eid] or ()) for eid in range(m))
    return (
        nodes,
        dict(tree.node_of_edge),
        frozenset(tree.roots),
        tuple(tree.node_of_eid),
        sla,
    )


def _state_views(state: TrussState):
    _index, truss, layer, mask = state.kernel_views()
    return list(truss), list(layer), bytes(mask), state.k_max


def _check_incremental_repeel(point: WorldPoint, graph: Graph, schedule) -> None:
    engine = engine_module.SolverEngine(
        graph, full_peel_threshold=_ALWAYS_INCREMENTAL
    )
    for i, edge in enumerate(schedule):
        engine.commit_anchor(edge)
        got = _state_views(engine.state)
        want = _state_views(TrussState.compute(graph, schedule[: i + 1]))
        if got != want:
            fields = ("trussness", "layer", "anchor mask", "k_max")
            diverged = [name for name, g, w in zip(fields, got, want) if g != w]
            raise InvariantViolation(
                point,
                "incremental_repeel",
                f"after commit {i + 1}/{len(schedule)} ({edge!r}) the "
                f"incremental state diverges from the full decomposition "
                f"in: {', '.join(diverged)}",
            )


def _check_tree_patch(point: WorldPoint, graph: Graph, schedule) -> None:
    engine = engine_module.SolverEngine(
        graph, full_peel_threshold=_ALWAYS_INCREMENTAL
    )
    engine.tree()
    for i, edge in enumerate(schedule):
        engine.commit_anchor(edge)
        patched = engine.tree()
        rebuilt = TrussComponentTree.build(engine.state)
        if tree_signature(patched) != tree_signature(rebuilt):
            raise InvariantViolation(
                point,
                "tree_patch",
                f"after commit {i + 1}/{len(schedule)} ({edge!r}) the patched "
                "component tree differs from a from-scratch rebuild",
            )


def _check_reuse_decision(point: WorldPoint, graph: Graph, schedule) -> None:
    patch = engine_module.SolverEngine(
        graph, full_peel_threshold=_ALWAYS_INCREMENTAL, tree_mode="patch"
    )
    diff = engine_module.SolverEngine(
        graph, full_peel_threshold=_ALWAYS_INCREMENTAL, tree_mode="rebuild"
    )
    patch.tree()
    diff.tree()
    previous = patch.state
    for i, edge in enumerate(schedule):
        patch.commit_anchor(edge)
        diff.commit_anchor(edge)
        current = patch.state
        followers = current.followers_relative_to(previous)
        previous = current
        from_patch = patch.take_reuse_decision(edge, followers)
        from_diff = diff.take_reuse_decision(edge, followers)
        where = f"after commit {i + 1}/{len(schedule)} ({edge!r})"
        if from_patch is None or from_diff is None:
            raise InvariantViolation(
                point,
                "reuse_decision",
                f"{where} a single-commit decision came back None "
                f"(patch={from_patch!r}, diff={from_diff!r})",
            )
        if (
            from_patch.decision.invalid_node_ids != from_diff.decision.invalid_node_ids
            or from_patch.decision.invalid_edges != from_diff.decision.invalid_edges
        ):
            raise InvariantViolation(
                point,
                "reuse_decision",
                f"{where} the patch-assembled decision differs from the "
                "before/after tree diff",
            )
        if from_patch.dirty_eids is None or from_diff.dirty_eids is not None:
            raise InvariantViolation(
                point,
                "reuse_decision",
                f"{where} dirty_eids contract broken (patch must narrow, "
                "rebuild must re-examine everything)",
            )


def _check_candidate_heap(point: WorldPoint, graph: Graph) -> None:
    budget = min(3, graph.num_edges)
    if budget < 1:
        return
    gas = engine_module.get_solver("gas")
    reference = gas(graph, budget, tree_mode="rebuild", candidates="scan")
    for tree_mode in ("patch", "rebuild"):
        run = gas(graph, budget, tree_mode=tree_mode, candidates="heap")
        if (
            run.anchors != reference.anchors
            or run.gain != reference.gain
            or run.per_round_gain != reference.per_round_gain
            or run.followers != reference.followers
        ):
            raise InvariantViolation(
                point,
                "candidate_heap",
                f"gas heap (tree_mode={tree_mode!r}) differs from the full "
                f"scan: heap gain={run.gain} anchors={run.anchors!r} vs "
                f"scan gain={reference.gain} anchors={reference.anchors!r}",
            )


def _numba_twin(csr, anchors: Sequence[int]):
    """The uncompiled numba twin under the shared peel contract."""
    import numpy as np

    m = csr.num_edges
    if m == 0:
        return [], [], 1
    is_anchor = np.zeros(m, dtype=np.bool_)
    if anchors:
        is_anchor[list(anchors)] = True
    trussness, layer, k_max = peel_module._scalar_peel_on_arrays(
        m, csr.support.copy(), csr.hit_offsets, csr.hit_e1, csr.hit_e2, is_anchor
    )
    return trussness.tolist(), layer.tolist(), int(k_max)


def _check_peel_backends(point: WorldPoint, graph: Graph, schedule) -> None:
    index = GraphIndex.of(graph)
    anchor_eids = [index.eid_of[edge] for edge in schedule]
    for anchors in ([], anchor_eids):
        expected = peel_trussness(index, anchors)
        if index.csr is None:
            continue  # no numpy: the scalar reference is the only backend
        for backend, run in (
            ("vectorized", lambda: peel_module.peel_trussness_arrays(index.csr, anchors)),
            ("numba-twin", lambda: _numba_twin(index.csr, anchors)),
        ):
            got = run()
            if got != expected:
                raise InvariantViolation(
                    point,
                    "peel_backends",
                    f"{backend} peel differs from the scalar reference "
                    f"(anchors={anchors!r})",
                )
        if peel_module.numba_available():  # pragma: no cover - optional extra
            if peel_module._peel_numba(index.csr, list(anchors)) != expected:
                raise InvariantViolation(
                    point,
                    "peel_backends",
                    f"compiled numba peel differs from the scalar reference "
                    f"(anchors={anchors!r})",
                )


def check_world_point(
    point: WorldPoint,
    invariants: Sequence[str] = INVARIANTS,
) -> InvariantReport:
    """Run the oracle bundle on ``point``; raise :class:`InvariantViolation`
    on the first failed check, return an :class:`InvariantReport` otherwise.
    """
    unknown = set(invariants) - set(INVARIANTS)
    if unknown:
        raise ReproError(f"unknown invariants {sorted(unknown)}; known: {INVARIANTS}")
    graph = point.build_graph()
    schedule = point.anchor_schedule(graph)
    if "incremental_repeel" in invariants:
        _check_incremental_repeel(point, graph, schedule)
    if "tree_patch" in invariants:
        _check_tree_patch(point, graph, schedule)
    if "reuse_decision" in invariants:
        _check_reuse_decision(point, graph, schedule)
    if "candidate_heap" in invariants:
        _check_candidate_heap(point, graph)
    if "peel_backends" in invariants:
        _check_peel_backends(point, graph, schedule)
    return InvariantReport(
        point=point,
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        schedule_length=len(schedule),
        checks=tuple(name for name in INVARIANTS if name in invariants),
    )
