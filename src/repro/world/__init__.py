"""Parameterised scenario world: sampled graph regimes for sweeps and fuzzing.

Fixed benchmark collections share statistical properties and hide
regime-dependent behaviour (the GraphWorld argument).  This package spans a
declarative parameter space over the synthetic generators — generator
family, size, density, clustering rewire, community count/size skew, degree
skew — and samples *world points* deterministically from a seed:

* :mod:`repro.world.axes` — the parameter space and the seeded sampler;
  every point carries a compact replay spec string that regenerates the
  identical graph and anchor schedule anywhere.
* :mod:`repro.world.sweep` — run every registered solver on each sampled
  graph and emit quality/latency/engine-stats rows as a table, JSON or CSV
  (the ``repro.cli world`` subcommand).
* :mod:`repro.world.invariants` — the metamorphic/differential oracle: per
  world point and anchor schedule, assert incremental re-peel ≡ full
  decomposition, tree patch ≡ rebuild, assembled reuse decision ≡ tree
  diff, candidate heap ≡ scan and all peel backends byte-identical.  A
  violation raises :class:`~repro.world.invariants.InvariantViolation`
  whose message contains a one-line ``repro.cli world --replay`` command.
"""

from repro.world.axes import FAMILIES, WorldAxes, WorldPoint, sample_points
from repro.world.invariants import (
    INVARIANTS,
    InvariantReport,
    InvariantViolation,
    check_world_point,
    replay_command,
    tree_signature,
)
from repro.world.sweep import SWEEP_FIELDS, run_sweep, summarize_sweep, sweep_rows_to_csv

__all__ = [
    "FAMILIES",
    "WorldAxes",
    "WorldPoint",
    "sample_points",
    "INVARIANTS",
    "InvariantReport",
    "InvariantViolation",
    "check_world_point",
    "replay_command",
    "tree_signature",
    "SWEEP_FIELDS",
    "run_sweep",
    "summarize_sweep",
    "sweep_rows_to_csv",
]
