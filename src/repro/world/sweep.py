"""Run every registered solver across sampled world points.

:func:`run_sweep` drives one :class:`~repro.core.engine.SolverEngine` per
world point through the canonical :class:`~repro.api.SolveSpec` ingress —
the same path the CLI and the serving layer use — once per registry solver,
and collects one row per ``(point, solver)`` pair: solution quality (gain,
follower count, ``k_max``), wall-clock latency and the engine's re-peel /
tree-maintenance counters.  Rows are plain dicts with the fixed
:data:`SWEEP_FIELDS` ordering so they serialise directly to JSON and CSV
(:func:`sweep_rows_to_csv`, shared with the CLI ``world`` subcommand).

Randomized baselines (``rand``/``sup``/``tur``) are pinned to a fixed seed,
so the whole sweep is a deterministic function of the sampled points.

Latency is measured on :data:`repro.obs.metrics.now` — the same clock the
serving metrics use — and every per-solve elapsed time is additionally
observed into a ``world.sweep_solve_s`` histogram on the provided registry
(or the armed process-global default), so offline sweep tables and live
metrics share one definition of latency.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.api.spec import SolveSpec
from repro.core.engine import SolverEngine, available_solvers, get_solver
from repro.experiments.reporting import format_csv
from repro.obs.metrics import MetricsRegistry, default_registry, now
from repro.world.axes import WorldPoint

__all__ = ["SWEEP_FIELDS", "run_sweep", "summarize_sweep", "sweep_rows_to_csv"]

#: Column order of a sweep row (JSON objects carry the same keys).
SWEEP_FIELDS: Tuple[str, ...] = (
    "point",
    "family",
    "n",
    "m",
    "k_max",
    "solver",
    "budget",
    "gain",
    "followers",
    "elapsed_s",
    "incremental_peels",
    "full_peels",
    "incremental_gain_evals",
    "full_gain_evals",
    "tree_patches",
    "tree_rebuilds",
)

#: Fixed parameters handed to seed-dependent solvers so a sweep is
#: deterministic end to end; ``repetitions`` is kept small because the
#: sweep's job is regime coverage, not squeezing the baselines.
RANDOMIZED_SOLVER_PARAMS: Mapping[str, Mapping[str, object]] = {
    "rand": {"seed": 97, "repetitions": 3},
    "sup": {"seed": 97, "repetitions": 3},
    "tur": {"seed": 97, "repetitions": 3},
}

_STAT_FIELDS = (
    "incremental_peels",
    "full_peels",
    "incremental_gain_evals",
    "full_gain_evals",
    "tree_patches",
    "tree_rebuilds",
)


def _solver_budget(name: str, budget: int, num_edges: int) -> int:
    budget = min(budget, num_edges)
    if name == "exact":
        # The exact solver enumerates C(pool, budget) subsets; budget 1 keeps
        # the sweep linear in m while still exercising its evaluation path.
        return min(budget, 1)
    return budget


def run_sweep(
    points: Sequence[WorldPoint],
    solvers: Optional[Sequence[str]] = None,
    budget: int = 2,
    progress: Optional[Callable[[str], None]] = None,
    registry: Optional[MetricsRegistry] = None,
) -> List[Dict[str, object]]:
    """One row per ``(point, solver)``: quality, latency and engine stats.

    ``solvers`` defaults to every registered solver
    (:func:`~repro.core.engine.available_solvers`); unknown names fail
    loudly through :func:`~repro.core.engine.get_solver`.  Points whose
    graph has fewer than two edges are skipped (reported via ``progress``).
    ``registry`` (or the armed process-global default) additionally
    receives every per-solve latency in a ``world.sweep_solve_s``
    histogram; rows are unchanged either way.
    """
    names = list(solvers) if solvers is not None else available_solvers()
    for name in names:
        get_solver(name)
    reg = registry if registry is not None else default_registry()
    sweep_hist = reg.histogram("world.sweep_solve_s") if reg is not None else None
    rows: List[Dict[str, object]] = []
    for point in points:
        graph = point.build_graph()
        if graph.num_edges < 2:
            if progress is not None:
                progress(f"skipping {point.spec()}: only {graph.num_edges} edge(s)")
            continue
        engine = SolverEngine(graph)
        k_max = engine.original_state.k_max
        for name in names:
            params = dict(RANDOMIZED_SOLVER_PARAMS.get(name, {}))
            spec = SolveSpec(
                algorithm=name,
                budget=_solver_budget(name, budget, graph.num_edges),
                params=params,
            )
            start = now()
            result = engine.solve_spec(spec)
            elapsed = now() - start
            if sweep_hist is not None:
                sweep_hist.observe(elapsed)
            row: Dict[str, object] = {
                "point": point.spec(),
                "family": point.family,
                "n": graph.num_vertices,
                "m": graph.num_edges,
                "k_max": k_max,
                "solver": name,
                "budget": spec.budget,
                "gain": result.gain,
                "followers": len(result.followers),
                "elapsed_s": round(elapsed, 6),
            }
            for stat in _STAT_FIELDS:
                row[stat] = engine.stats[stat]
            rows.append(row)
        if progress is not None:
            progress(f"swept {point.spec()} ({len(names)} solver(s))")
    return rows


def sweep_rows_to_csv(rows: Sequence[Mapping[str, object]]) -> str:
    """Render sweep rows as CSV text in :data:`SWEEP_FIELDS` order."""
    return format_csv(
        SWEEP_FIELDS, [[row.get(field, "") for field in SWEEP_FIELDS] for row in rows]
    )


def summarize_sweep(
    rows: Sequence[Mapping[str, object]],
) -> List[Dict[str, object]]:
    """Aggregate rows per ``(family, solver)``: mean gain/latency over points."""
    grouped: Dict[Tuple[str, str], List[Mapping[str, object]]] = {}
    for row in rows:
        grouped.setdefault((str(row["family"]), str(row["solver"])), []).append(row)
    summary: List[Dict[str, object]] = []
    for (family, solver), group in sorted(grouped.items()):
        count = len(group)
        summary.append(
            {
                "family": family,
                "solver": solver,
                "points": count,
                "mean_gain": round(sum(float(r["gain"]) for r in group) / count, 3),
                "mean_elapsed_s": round(
                    sum(float(r["elapsed_s"]) for r in group) / count, 6
                ),
            }
        )
    return summary
