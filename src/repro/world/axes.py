"""The world's parameter space and the seeded sampler.

A :class:`WorldAxes` declares the axes the scenario world spans: the
generator family plus ranges for size, density, clustering rewire, degree
skew (attachment count), community count, community size skew and the
anchor-schedule length.  :func:`sample_points` draws :class:`WorldPoint`
instances deterministically from a seed — same seed, same points, on any
machine — cycling the families round-robin so every sweep covers every
regime.

A point is self-contained: :meth:`WorldPoint.build_graph` regenerates its
graph, :meth:`WorldPoint.anchor_schedule` its anchor chain, and
:meth:`WorldPoint.spec` renders a compact one-line string that
:meth:`WorldPoint.from_spec` inverts exactly.  The spec string is the rig's
replay contract: any invariant failure can be reproduced from the single
line ``python -m repro.cli world --replay "<spec>"``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.graph.generators import (
    barabasi_albert_graph,
    erdos_renyi_graph,
    overlapping_cliques_graph,
    powerlaw_cluster_graph,
    skewed_block_sizes,
    stochastic_block_model,
    watts_strogatz_graph,
)
from repro.graph.graph import Edge, Graph
from repro.utils.errors import InvalidParameterError
from repro.utils.rng import make_rng

__all__ = ["FAMILIES", "WorldAxes", "WorldPoint", "sample_points"]

#: Generator families the world spans, in sampling (round-robin) order:
#: Erdős–Rényi, Barabási–Albert, Watts–Strogatz, Holme–Kim
#: powerlaw-cluster, stochastic block model with skewed community sizes,
#: and overlapping cliques.
FAMILIES: Tuple[str, ...] = ("er", "ba", "ws", "plc", "community", "cliques")

ParamValue = Union[int, float]


def _check_range(name: str, lo: ParamValue, hi: ParamValue) -> None:
    if lo > hi:
        raise InvalidParameterError(f"axis {name}: low {lo!r} exceeds high {hi!r}")


@dataclass(frozen=True)
class WorldAxes:
    """Declarative ranges for every axis of the world (inclusive bounds)."""

    #: Generator families to cycle through (subset of :data:`FAMILIES`).
    families: Tuple[str, ...] = FAMILIES
    #: Vertex count range.
    n: Tuple[int, int] = (12, 44)
    #: Edge density: ER's ``p`` and (shifted up) the SBM intra-community ``p``.
    density: Tuple[float, float] = (0.15, 0.5)
    #: Rewiring / triangle-closure probability (WS ``p``, PLC ``p``).
    rewire: Tuple[float, float] = (0.05, 0.6)
    #: Attachment count (BA/PLC ``m``) — the degree-skew knob.
    degree_skew: Tuple[int, int] = (1, 4)
    #: Community count for the SBM family.
    communities: Tuple[int, int] = (2, 4)
    #: Power-law exponent of the SBM community-size skew
    #: (see :func:`repro.graph.generators.skewed_block_sizes`).
    size_skew: Tuple[float, float] = (0.0, 2.5)
    #: SBM inter-community edge probability.
    inter_density: Tuple[float, float] = (0.02, 0.12)
    #: Anchor-schedule length range.
    anchors: Tuple[int, int] = (3, 6)

    def __post_init__(self) -> None:
        if not self.families:
            raise InvalidParameterError("families must be non-empty")
        unknown = set(self.families) - set(FAMILIES)
        if unknown:
            raise InvalidParameterError(
                f"unknown families {sorted(unknown)}; known: {FAMILIES}"
            )
        for name in ("n", "density", "rewire", "degree_skew", "communities",
                     "size_skew", "inter_density", "anchors"):
            lo, hi = getattr(self, name)
            _check_range(name, lo, hi)
        if self.n[0] < 6:
            raise InvalidParameterError("n must be at least 6")
        if self.anchors[0] < 0:
            raise InvalidParameterError("anchors must be non-negative")


@dataclass(frozen=True)
class WorldPoint:
    """One sampled point of the world: a graph recipe plus an anchor schedule.

    Immutable and fully self-describing — every field is derivable from the
    :meth:`spec` string, so a point can be shipped as one line of text and
    regenerated exactly (:meth:`from_spec`).
    """

    family: str
    n: int
    seed: int
    params: Tuple[Tuple[str, ParamValue], ...] = field(default_factory=tuple)
    anchor_count: int = 4
    anchor_seed: int = 0

    def __post_init__(self) -> None:
        if self.family not in FAMILIES:
            raise InvalidParameterError(
                f"unknown family {self.family!r}; known: {FAMILIES}"
            )
        if self.anchor_count < 0:
            raise InvalidParameterError("anchor_count must be non-negative")
        object.__setattr__(self, "params", tuple(sorted(self.params)))

    def param(self, name: str) -> ParamValue:
        for key, value in self.params:
            if key == name:
                return value
        raise InvalidParameterError(f"point has no parameter {name!r}")

    def build_graph(self) -> Graph:
        """Regenerate this point's graph (deterministic in the point alone)."""
        p = dict(self.params)
        if self.family == "er":
            return erdos_renyi_graph(self.n, p["p"], seed=self.seed)
        if self.family == "ba":
            return barabasi_albert_graph(self.n, int(p["m"]), seed=self.seed)
        if self.family == "ws":
            return watts_strogatz_graph(self.n, int(p["k"]), p["p"], seed=self.seed)
        if self.family == "plc":
            return powerlaw_cluster_graph(self.n, int(p["m"]), p["p"], seed=self.seed)
        if self.family == "community":
            blocks = int(p["blocks"])
            sizes = skewed_block_sizes(self.n, blocks, p["skew"])
            p_in, p_out = p["p_in"], p["p_out"]
            matrix = [
                [p_in if i == j else p_out for j in range(blocks)]
                for i in range(blocks)
            ]
            return stochastic_block_model(sizes, matrix, seed=self.seed)
        assert self.family == "cliques"
        return overlapping_cliques_graph(
            int(p["cliques"]),
            int(p["size"]),
            int(p["overlap"]),
            noise_edges=int(p["noise"]),
            seed=self.seed,
        )

    def anchor_schedule(self, graph: Optional[Graph] = None) -> List[Edge]:
        """The point's deterministic anchor chain (a seeded edge sample)."""
        if graph is None:
            graph = self.build_graph()
        rng = make_rng(self.anchor_seed)
        edges = graph.edge_list()
        return rng.sample(edges, min(self.anchor_count, len(edges)))

    def spec(self) -> str:
        """Compact one-line replay spec; inverted exactly by :meth:`from_spec`."""
        parts = [
            self.family,
            f"n={self.n}",
            f"seed={self.seed}",
            f"anchors={self.anchor_count}@{self.anchor_seed}",
        ]
        parts.extend(f"{key}={value!r}" for key, value in self.params)
        return ";".join(parts)

    @classmethod
    def from_spec(cls, text: str) -> "WorldPoint":
        """Parse a :meth:`spec` string back into the identical point."""
        parts = [part.strip() for part in text.strip().split(";") if part.strip()]
        if not parts or "=" in parts[0]:
            raise InvalidParameterError(
                f"malformed point spec {text!r}: must start with a family name"
            )
        family = parts[0]
        n = seed = None
        anchor_count, anchor_seed = 0, 0
        params: List[Tuple[str, ParamValue]] = []
        for part in parts[1:]:
            if "=" not in part:
                raise InvalidParameterError(f"malformed spec field {part!r}")
            key, _, raw = part.partition("=")
            try:
                if key == "n":
                    n = int(raw)
                elif key == "seed":
                    seed = int(raw)
                elif key == "anchors":
                    count_raw, _, aseed_raw = raw.partition("@")
                    anchor_count = int(count_raw)
                    anchor_seed = int(aseed_raw) if aseed_raw else 0
                else:
                    params.append((key, _parse_value(raw)))
            except ValueError as exc:
                raise InvalidParameterError(
                    f"malformed spec field {part!r}: {exc}"
                ) from exc
        if n is None or seed is None:
            raise InvalidParameterError(f"spec {text!r} is missing n= or seed=")
        return cls(
            family=family,
            n=n,
            seed=seed,
            params=tuple(params),
            anchor_count=anchor_count,
            anchor_seed=anchor_seed,
        )

    def label(self) -> str:
        """Short display label (not a replay spec)."""
        return f"{self.family}-n{self.n}-s{self.seed}"


def _parse_value(raw: str) -> ParamValue:
    try:
        return int(raw)
    except ValueError:
        return float(raw)


def _round(value: float) -> float:
    # 6 decimals keeps spec strings compact; repr round-trips exactly.
    return round(value, 6)


def _sample_point(family: str, axes: WorldAxes, rng) -> WorldPoint:
    n = rng.randint(*axes.n)
    params: List[Tuple[str, ParamValue]] = []
    if family == "er":
        params.append(("p", _round(rng.uniform(*axes.density))))
    elif family == "ba":
        params.append(("m", min(rng.randint(*axes.degree_skew), n - 1)))
    elif family == "ws":
        half = rng.randint(1, max(1, min(3, (n - 1) // 2)))
        params.append(("k", 2 * half))
        params.append(("p", _round(rng.uniform(*axes.rewire))))
    elif family == "plc":
        params.append(("m", min(rng.randint(*axes.degree_skew), n - 1)))
        params.append(("p", _round(rng.uniform(*axes.rewire))))
    elif family == "community":
        blocks = max(2, min(rng.randint(*axes.communities), n // 3))
        params.append(("blocks", blocks))
        params.append(("skew", _round(rng.uniform(*axes.size_skew))))
        # intra-community density is shifted up so communities host triangles
        params.append(("p_in", _round(min(0.9, rng.uniform(*axes.density) + 0.25))))
        params.append(("p_out", _round(rng.uniform(*axes.inter_density))))
    else:
        assert family == "cliques"
        size = rng.randint(4, 6)
        params.append(("size", size))
        params.append(("cliques", max(2, n // size)))
        params.append(("overlap", rng.randint(1, size - 2)))
        params.append(("noise", rng.randint(0, max(1, n // 6))))
    return WorldPoint(
        family=family,
        n=n,
        seed=rng.randint(0, 9_999_999),
        params=tuple(params),
        anchor_count=rng.randint(*axes.anchors),
        anchor_seed=rng.randint(0, 9_999_999),
    )


def sample_points(
    count: int,
    seed: int = 0,
    axes: Optional[WorldAxes] = None,
) -> List[WorldPoint]:
    """Sample ``count`` world points deterministically from ``seed``.

    Families cycle round-robin through ``axes.families`` (so a sample of at
    least ``len(axes.families)`` points covers every family); everything
    else is drawn from one :func:`repro.utils.rng.make_rng` stream, making
    the whole list a pure function of ``(count, seed, axes)``.
    """
    if count < 0:
        raise InvalidParameterError("count must be non-negative")
    axes = axes if axes is not None else WorldAxes()
    rng = make_rng(seed)
    return [
        _sample_point(axes.families[i % len(axes.families)], axes, rng)
        for i in range(count)
    ]
