"""The solver engine: one session object behind every anchor-selection run.

Before this layer existed each solver owned its own round loop and rebuilt
the shared machinery — :class:`~repro.graph.index.GraphIndex`,
:class:`~repro.truss.state.TrussState`, the
:class:`~repro.core.component_tree.TrussComponentTree` and the GAS follower
caches — independently, and BASE re-peeled the *whole graph* once per
candidate edge per round.  :class:`SolverEngine` consolidates that round
machinery:

* it owns the index, the original (anchor-free) state, the current anchored
  state, the component tree and the per-candidate follower caches for one
  solve session;
* committed anchors advance the state by **incremental re-peeling** (see
  below) instead of a full :func:`~repro.truss.decomposition.truss_decomposition`;
* BASE's per-candidate gain evaluation runs the same restricted re-peel, so
  a candidate costs work proportional to its *dirty region* instead of the
  whole graph;
* solvers are plain functions ``(engine, request) -> AnchorResult`` looked
  up in a registry (:func:`register_solver` / :func:`get_solver`), so the
  CLI table and the experiment harness pick up a new solver from one
  registration instead of five hand-maintained edits.

Incremental re-peeling
----------------------
Anchoring a single edge ``x`` on top of an exact state changes the
decomposition in a bounded region:

1. *Trussness.*  By Lemma 1 every follower gains exactly ``+1``, and by
   Lemma 2 the followers are contained in the upward-route reachable
   closure of ``x``'s triangle neighbours.  The engine expands a
   layer-free superset of that closure (safe even while intermediate
   layers are unknown, e.g. in chained evaluations), then runs the
   greatest-fixed-point peel of each trussness level restricted to the
   closure — exactly the per-level condition of the follower search, which
   yields the exact follower set and therefore the exact new trussness of
   every edge.
2. *Layers.*  The synchronous peeling layers of phase ``k`` depend only on
   which edges have (new) trussness ``>= k``, so a phase needs re-peeling
   exactly when its membership or mid-phase removals changed: the old and
   new level of every follower, the old level of ``x`` itself, and every
   level above ``t(x)`` where ``x``'s new permanent presence closes a
   triangle with a still-present partner.  Those hulls are re-peeled with
   the same synchronous-wave rule as the full decomposition; every other
   level keeps its old layers unchanged.

When the dirty closure exceeds ``full_peel_threshold * m`` edges the engine
falls back to a full peel — the incremental path is an optimisation, never a
semantic fork, and the test-suite asserts both produce identical
decompositions on randomized anchored graphs.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.api.spec import SolveSpec
from repro.core.component_tree import TreePatchInfo, TrussComponentTree
from repro.core.result import AnchorResult
from repro.core.reuse import ReuseDecision, ReuseInvalidation, compute_reuse_decision
from repro.graph.graph import Edge, Graph
from repro.graph.index import GraphIndex
from repro.obs.tracing import span as _span
from repro.truss.peel import peel_trussness_fast
from repro.truss.decomposition import TrussDecomposition
from repro.truss.state import TrussState
from repro.utils.errors import InvalidParameterError

__all__ = [
    "CommitDelta",
    "SolveSpec",
    "SolverEngine",
    "SolverSpec",
    "register_solver",
    "get_solver",
    "available_solvers",
    "solver_table",
    "solve",
]

#: Fraction of the edge count above which the dirty closure triggers a full
#: re-peel instead of the incremental one (the incremental bookkeeping no
#: longer pays off once most of the graph is dirty anyway).
DEFAULT_FULL_PEEL_THRESHOLD = 0.25

#: Component-tree maintenance strategies (``SolverEngine(tree_mode=...)``).
TREE_MODES = ("patch", "rebuild")

#: Pending invalidation entries kept before collapsing to a stale marker —
#: a consumer (GAS) drains the log every round; anything far beyond that is
#: an engine user who never calls :meth:`SolverEngine.take_reuse_decision`.
_INVALIDATION_LOG_LIMIT = 64

_INF = math.inf


@dataclass
class CommitDelta:
    """Everything an incremental re-peel learned about one committed anchor.

    Recorded by :meth:`SolverEngine._advance` whenever the incremental path
    ran (the full-peel fallback records ``None`` instead) and consumed by
    the incremental component-tree patch
    (:meth:`~repro.core.component_tree.TrussComponentTree.apply_commit`):

    * ``anchor_eid`` — dense id of the committed anchor;
    * ``follower_eids`` — its exact follower set (every one gained ``+1``);
    * ``changed_eids`` — every edge whose trussness *or* peeling layer
      differs from the pre-commit state (the anchor itself included); this
      is exactly the ``invalid_edges`` set of the reuse rule (Algorithm 5);
    * ``state_after`` — the materialised post-commit state (cleared once the
      tree has consumed the delta, so chained states do not accumulate).
    """

    anchor_eid: int
    follower_eids: Tuple[int, ...]
    changed_eids: FrozenSet[int]
    state_after: Optional[TrussState]


# ---------------------------------------------------------------------------
# Incremental re-peeling primitives (dense-id domain)
# ---------------------------------------------------------------------------
def _dirty_closure(
    index: GraphIndex,
    truss: List[float],
    anchor_eid: int,
    limit: Optional[float] = None,
) -> Optional[Set[int]]:
    """Layer-free superset of the Lemma-2 upward-route closure of ``anchor_eid``.

    Seeds are the anchor's non-anchored triangle neighbours with trussness at
    least ``t(x)``; the expansion walks same-trussness triangle neighbours.
    Dropping the layer comparisons keeps the closure valid when intermediate
    layers are stale (chained evaluations) — it is only ever a superset, and
    the per-level greatest fixed point below is exact for any member set
    sandwiched between the followers and the whole hull.

    When ``limit`` is given the walk aborts and returns ``None`` as soon as
    the closure exceeds it — the caller falls back to a full peel, so there
    is no point paying for the rest of the expansion.
    """
    tri = index.edge_triangles
    t_anchor = truss[anchor_eid]
    seen: Set[int] = {anchor_eid}
    stack: List[int] = []
    for a, b, _w in tri[anchor_eid]:
        for eid in (a, b):
            if eid not in seen and t_anchor <= truss[eid] != _INF:
                seen.add(eid)
                stack.append(eid)
    closure: Set[int] = set(stack)
    if limit is not None and len(closure) > limit:
        return None
    while stack:
        eid = stack.pop()
        k = truss[eid]
        for a, b, _w in tri[eid]:
            for nxt in (a, b):
                if nxt not in seen and truss[nxt] == k:
                    seen.add(nxt)
                    closure.add(nxt)
                    stack.append(nxt)
        if limit is not None and len(closure) > limit:
            return None
    return closure


def _gfp_level(
    index: GraphIndex,
    truss: List[float],
    anchor_eid: int,
    k: int,
    members: Set[int],
) -> Set[int]:
    """Level-``k`` followers: greatest fixed point of the support condition.

    A member survives iff it closes at least ``k - 1`` triangles whose other
    two edges are each *solid* (the new anchor, an existing anchor or an edge
    of trussness ``>= k + 1`` — anchors hold ``inf`` in ``truss``) or another
    surviving member.  ``members`` may be any superset of the level-k
    followers drawn from the k-hull; extras are peeled away.
    """
    tri = index.edge_triangles
    solid = k + 1
    alive = set(members)
    support: Dict[int, int] = {}
    for eid in alive:
        count = 0
        for a, b, _w in tri[eid]:
            if (a == anchor_eid or truss[a] >= solid or a in alive) and (
                b == anchor_eid or truss[b] >= solid or b in alive
            ):
                count += 1
        support[eid] = count
    threshold = k - 1
    queue = [eid for eid in alive if support[eid] < threshold]
    removed = set(queue)
    while queue:
        eid = queue.pop()
        alive.discard(eid)
        for a, b, _w in tri[eid]:
            for member, partner in ((a, b), (b, a)):
                if member in alive and (
                    partner == anchor_eid or truss[partner] >= solid or partner in alive
                ):
                    support[member] -= 1
                    if support[member] < threshold and member not in removed:
                        removed.add(member)
                        queue.append(member)
    return alive


def _followers_on_arrays(
    index: GraphIndex, truss: List[float], anchor_eid: int, dirty: Set[int]
) -> List[int]:
    """Exact follower eids of anchoring ``anchor_eid``, given the dirty closure."""
    by_level: Dict[int, Set[int]] = {}
    for eid in dirty:
        by_level.setdefault(int(truss[eid]), set()).add(eid)
    followers: List[int] = []
    for k, members in by_level.items():
        followers.extend(_gfp_level(index, truss, anchor_eid, k, members))
    return followers


def _repeel_hull_layers(
    index: GraphIndex,
    truss: List[float],
    layer: List[float],
    k: int,
    members: List[int],
) -> None:
    """Recompute the synchronous peeling layers of the ``k``-hull in place.

    ``members`` are the eids with (new) trussness exactly ``k``; support is
    counted against the phase-``k`` graph ``{t >= k}`` (anchors hold ``inf``).
    The wave rule mirrors :func:`repro.graph.index.peel_trussness`: waves are
    processed in ascending eid order, removals take effect immediately within
    a wave, and an edge whose support drops to the threshold mid-wave joins
    the *next* wave.
    """
    tri = index.edge_triangles
    threshold = k - 2
    support: Dict[int, int] = {}
    for eid in members:
        count = 0
        for a, b, _w in tri[eid]:
            if truss[a] >= k and truss[b] >= k:
                count += 1
        support[eid] = count
    removed: Set[int] = set()
    scheduled: Set[int] = set()
    frontier = sorted(eid for eid in members if support[eid] <= threshold)
    scheduled.update(frontier)
    layer_index = 0
    while frontier:
        layer_index += 1
        next_frontier: List[int] = []
        for eid in frontier:
            layer[eid] = layer_index
            removed.add(eid)
            for a, b, _w in tri[eid]:
                if (
                    truss[a] >= k
                    and truss[b] >= k
                    and a not in removed
                    and b not in removed
                ):
                    if truss[a] == k:
                        support[a] -= 1
                        if support[a] <= threshold and a not in scheduled:
                            scheduled.add(a)
                            next_frontier.append(a)
                    if truss[b] == k:
                        support[b] -= 1
                        if support[b] <= threshold and b not in scheduled:
                            scheduled.add(b)
                            next_frontier.append(b)
        next_frontier.sort()
        frontier = next_frontier


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------
class SolverEngine:
    """Shared session state for one (or several) solves over a fixed graph.

    The engine owns everything the solvers used to rebuild independently:
    the frozen :class:`GraphIndex`, the anchor-free baseline state, the
    current anchored state (advanced by incremental re-peeling on every
    committed anchor), the truss component tree of the current state and the
    GAS follower caches.  Solvers access it through :meth:`solve` or drive
    the primitives (:meth:`commit_anchor`, :meth:`evaluate_gain`,
    :meth:`tree`) directly.
    """

    def __init__(
        self,
        graph: Graph,
        baseline_state: Optional[TrussState] = None,
        full_peel_threshold: float = DEFAULT_FULL_PEEL_THRESHOLD,
        tree_mode: str = "patch",
    ) -> None:
        if tree_mode not in TREE_MODES:
            raise InvalidParameterError(
                f"unknown tree_mode {tree_mode!r}; expected one of {TREE_MODES}"
            )
        self.graph = graph
        self.index = GraphIndex.of(graph)
        self.full_peel_threshold = full_peel_threshold
        #: ``"patch"`` (default) maintains the component tree incrementally
        #: after each commit; ``"rebuild"`` forces the PR 2 behaviour (a full
        #: :meth:`TrussComponentTree.build` per state) — the reference twin
        #: the equivalence tests and benchmarks pin the patched path against.
        self.tree_mode = tree_mode
        self._original_state = baseline_state
        # Committed anchor chain + the prefix of it already materialised as a
        # TrussState (commits are lazy: a final round that never reads the
        # state costs nothing, mirroring the solvers' old skip-last-round
        # optimisation).
        self.anchors: List[Edge] = []
        self._materialized_state: Optional[TrussState] = None
        self._materialized_count = 0
        self._tree: Optional[TrussComponentTree] = None
        self._tree_state: Optional[TrussState] = None
        # Per-commit deltas recorded by the incremental re-peel (None for
        # full-peel fallbacks), aligned with the materialised chain; the
        # component tree consumes them from _tree_commit_index onwards.
        self._deltas: List[Optional[CommitDelta]] = []
        self._tree_commit_index = 0
        # Invalidation log since the last take_reuse_decision() call:
        # ("patch", TreePatchInfo, CommitDelta) per patched commit,
        # ("rebuild", (previous_tree, commit_span), None) for a rebuild, or
        # ("stale", None, None) once the log can no longer yield an exact
        # decision (mixed batches, overflow) — stale entries pin no memory.
        self._invalidation_log: List[Tuple[str, object, Optional[CommitDelta]]] = []
        # GAS per-candidate follower caches: F[eid][node_id] plus the cached
        # per-candidate totals.  Owned here so a session can span rounds.
        self.follower_cache: Dict[int, Dict[int, FrozenSet[Edge]]] = {}
        self.follower_totals: Dict[int, int] = {}
        # Baseline follower snapshot (the GAS warm-path fix): the follower
        # cache of an *unanchored* first round, captured once per session by
        # :meth:`snapshot_baseline_followers` and surviving :meth:`reset` —
        # a warm session's first GAS round restores it instead of
        # recomputing every candidate's followers from scratch.
        self._baseline_followers: Optional[
            Tuple[Dict[int, Dict[int, FrozenSet[Edge]]], Dict[int, int]]
        ] = None
        #: Diagnostics: how often each re-peel path ran for the *current*
        #: solve.  :meth:`reset` folds the counters into
        #: :attr:`lifetime_stats` and zeroes them, so a warm (cached) engine
        #: reports exactly the same per-solve stats as a fresh one — the
        #: serving layer's byte-identity guarantee depends on this.
        self.stats: Dict[str, int] = {
            "incremental_peels": 0,
            "full_peels": 0,
            "incremental_gain_evals": 0,
            "full_gain_evals": 0,
            "dirty_edges": 0,
            "tree_patches": 0,
            "tree_rebuilds": 0,
        }
        #: Accumulated counters of every solve that was *reset away* (the
        #: current solve's counters live in :attr:`stats` until the next
        #: reset); see :meth:`session_info` for the combined view.
        self.lifetime_stats: Dict[str, int] = dict.fromkeys(self.stats, 0)
        #: Number of :meth:`solve` calls served by this engine instance.
        self.solve_count = 0

    # ------------------------------------------------------------------
    # State management
    # ------------------------------------------------------------------
    @property
    def original_state(self) -> TrussState:
        """The anchor-free baseline state (Definition 4's reference point)."""
        if self._original_state is None:
            self._original_state = TrussState.compute(self.graph)
        return self._original_state

    @property
    def state(self) -> TrussState:
        """The state of the committed anchor chain (materialised on demand).

        The chain always extends :attr:`original_state` — if a provided
        baseline carries anchors of its own, committed anchors stack on top
        of them, regardless of whether the state was first read before or
        after the commits.
        """
        state = self._materialized_state
        if state is None:
            state = self.original_state
        while self._materialized_count < len(self.anchors):
            state = self._advance(state, self.anchors[self._materialized_count])
            self._materialized_count += 1
        self._materialized_state = state
        return state

    def reset(self, initial_anchors: Iterable[Edge] = ()) -> None:
        """Start a fresh solve: drop the chain, caches, tree and per-solve stats.

        The expensive session assets — the :class:`GraphIndex`, the
        anchor-free baseline state and the baseline follower snapshot —
        survive, which is exactly what a warm (cached) engine amortises
        across requests.  Everything a solver can observe is restored: the
        state chain, the component tree, the follower caches and the
        :attr:`stats` counters (folded into :attr:`lifetime_stats`), so a
        solve on a reused engine returns results canonically identical to
        the same solve on a fresh engine (only work-rate diagnostics such
        as GAS's recompute counters may differ — a warm first round
        recomputes nothing; see
        :func:`repro.api.canonical_result`).

        Duplicate initial anchors are dropped (first occurrence wins) —
        anchoring is idempotent, and the chain advance rejects re-anchoring.
        """
        for key, value in self.stats.items():
            self.lifetime_stats[key] = self.lifetime_stats.get(key, 0) + value
            self.stats[key] = 0
        seen: Set[Edge] = set()
        self.anchors = []
        for e in initial_anchors:
            edge = self.graph.require_edge(e)
            if edge not in seen:
                seen.add(edge)
                self.anchors.append(edge)
        self._materialized_state = None
        self._materialized_count = 0
        self._tree = None
        self._tree_state = None
        self._deltas = []
        self._tree_commit_index = 0
        self._invalidation_log = []
        self.follower_cache.clear()
        self.follower_totals.clear()

    def snapshot_baseline_followers(self) -> None:
        """Persist the unanchored first-round follower cache for future solves.

        Called by GAS right after a cold first-round full pass on an
        **unanchored** session (no committed or initial anchors): at that
        point every ``F[e][node]`` entry and every cached total was computed
        against :attr:`original_state`, so they are valid for the first
        round of *any* later unanchored solve on this engine.  A no-op when
        anchors are present, when a snapshot already exists, or when there
        is nothing to snapshot.
        """
        if self.anchors or self._baseline_followers is not None:
            return
        if not self.follower_cache:
            return
        self._baseline_followers = (
            {eid: dict(entry) for eid, entry in self.follower_cache.items()},
            dict(self.follower_totals),
        )

    def restore_baseline_followers(self) -> bool:
        """Refill the live follower caches from the baseline snapshot.

        Returns ``True`` when the snapshot applied: the session is
        unanchored (the snapshot was taken against :attr:`original_state`,
        which every solve chain starts from) and a snapshot exists.  The
        restore mutates the cache dicts in place, so aliases held by a
        running solver stay valid.  Entries are copied out — the solver
        mutates its cache across rounds and the snapshot must keep serving
        pristine baselines.
        """
        if self.anchors or self._baseline_followers is None:
            return False
        cache, totals = self._baseline_followers
        self.follower_cache.clear()
        for eid, entry in cache.items():
            self.follower_cache[eid] = dict(entry)
        self.follower_totals.clear()
        self.follower_totals.update(totals)
        return True

    def commit_anchor(self, edge: Edge) -> None:
        """Append ``edge`` to the anchor chain (state advances lazily)."""
        self.anchors.append(self.graph.require_edge(edge))

    def tree(self) -> TrussComponentTree:
        """The truss component tree of the current state.

        With ``tree_mode="patch"`` (the default) an existing tree is advanced
        **incrementally**: each commit's :class:`CommitDelta` is applied via
        :meth:`TrussComponentTree.apply_commit`, touching only the nodes whose
        trussness levels changed.  The tree is rebuilt from scratch only when
        a commit fell back to a full peel (no delta available), when no tree
        exists yet, or with ``tree_mode="rebuild"`` (the PR 2 reference
        behaviour).  Every absorbed commit is logged so
        :meth:`take_reuse_decision` can report the exact invalidation.
        """
        state = self.state
        if self._tree is not None and self._tree_state is state:
            return self._tree
        tree = self._tree
        if (
            self.tree_mode == "patch"
            and tree is not None
            and self._tree_commit_index < self._materialized_count
            and all(
                self._deltas[i] is not None
                for i in range(self._tree_commit_index, self._materialized_count)
            )
        ):
            while self._tree_commit_index < self._materialized_count:
                delta = self._deltas[self._tree_commit_index]
                assert delta is not None and delta.state_after is not None
                info = tree.apply_commit(delta, delta.state_after)
                self.stats["tree_patches"] += 1
                self._invalidation_log.append(("patch", info, delta))
                delta.state_after = None  # release the chained state
                self._tree_commit_index += 1
            if len(self._invalidation_log) > _INVALIDATION_LOG_LIMIT:
                # Nobody is draining the log; stop accumulating exact info.
                self._invalidation_log = [("stale", None, None)]
            self._tree_state = state
            return tree
        if tree is not None:
            if self._invalidation_log:
                # A mixed batch can never yield an exact decision; collapse
                # to a stale marker so the old tree is not pinned in memory.
                self._invalidation_log = [("stale", None, None)]
            else:
                span = self._materialized_count - self._tree_commit_index
                self._invalidation_log.append(("rebuild", (tree, span), None))
        with _span("engine.tree_rebuild"):
            self._tree = TrussComponentTree.build(state)
        self.stats["tree_rebuilds"] += 1
        self._tree_state = state
        self._tree_commit_index = self._materialized_count
        for delta in self._deltas:
            if delta is not None:
                delta.state_after = None
        return self._tree

    def take_reuse_decision(
        self, committed_anchor: Edge, committed_followers: Iterable[Edge]
    ) -> Optional[ReuseInvalidation]:
        """Exact follower-reuse invalidation for the commits since last asked.

        Refreshes the component tree, then consumes the invalidation log:

        * if every absorbed commit was an incremental tree patch, the
          decision is assembled from the patch bookkeeping alone — no
          before/after tree diff, no full scan — and ``dirty_eids`` narrows
          the candidates the GAS heap must re-examine to the dirty closure;
        * if the tree was rebuilt (full-peel fallback or
          ``tree_mode="rebuild"``), the decision comes from the classic
          before/after diff (:func:`compute_reuse_decision`) and
          ``dirty_eids`` is ``None`` (re-examine everything);
        * returns ``None`` when no information is available (no commit since
          the last call, or several mixed commits at once) — callers must
          then treat every cached entry as invalid.

        Either way the returned decision is byte-identical to what
        :func:`compute_reuse_decision` would produce, which the test-suite
        asserts on randomized graphs.
        """
        self.tree()
        log = self._invalidation_log
        self._invalidation_log = []
        if not log:
            return None
        if len(log) == 1 and log[0][0] == "rebuild":
            previous_tree, span = log[0][1]  # type: ignore[misc]
            assert isinstance(previous_tree, TrussComponentTree)
            if span != 1:
                # The rebuild absorbed several commits at once; steps 2-3 of
                # the reuse rule (sla adjacency, follower hosts) would only
                # cover the last anchor — be conservative instead.
                return None
            decision = compute_reuse_decision(
                previous_tree,
                self._tree,  # type: ignore[arg-type]
                committed_anchor,
                set(committed_followers),
            )
            return ReuseInvalidation(decision=decision, dirty_eids=None)
        if all(kind == "patch" for kind, _info, _delta in log):
            decision = ReuseDecision()
            dirty: Set[int] = set()
            edge_of = self.index.edge_of
            for _kind, info, delta in log:
                assert isinstance(info, TreePatchInfo) and delta is not None
                decision.invalid_node_ids |= info.invalid_node_ids
                for eid in delta.changed_eids:
                    decision.invalid_edges.add(edge_of[eid])
                dirty |= info.dirty_candidate_eids
            return ReuseInvalidation(decision=decision, dirty_eids=dirty)
        return None  # pragma: no cover - mixed multi-commit batches

    # ------------------------------------------------------------------
    # Incremental re-peeling
    # ------------------------------------------------------------------
    def _advance(self, state: TrussState, new_anchor: Edge) -> TrussState:
        """Exact state for ``state.anchors + {new_anchor}`` via incremental re-peel."""
        index = self.index
        eid = index.eid_of[new_anchor]
        _index, truss, layer, mask = state.kernel_views()
        if mask[eid]:
            raise InvalidParameterError(f"edge {new_anchor!r} is already anchored")
        m = index.num_edges

        dirty = _dirty_closure(index, truss, eid, self.full_peel_threshold * m)
        if dirty is None:
            self.stats["full_peels"] += 1
            self._deltas.append(None)
            with _span("engine.full_peel", edges=m):
                return TrussState.compute(
                    self.graph, set(state.anchors) | {new_anchor}
                )
        self.stats["dirty_edges"] += len(dirty)
        self.stats["incremental_peels"] += 1

        with _span("engine.incremental_peel", dirty_edges=len(dirty)):
            return self._advance_incremental(
                state, new_anchor, eid, dirty, truss, layer, mask, m
            )

    def _advance_incremental(
        self,
        state: TrussState,
        new_anchor: Edge,
        eid: int,
        dirty: Set[int],
        truss,
        layer,
        mask,
        m: int,
    ) -> TrussState:
        index = self.index
        followers = _followers_on_arrays(index, truss, eid, dirty)

        new_truss: List[float] = list(truss)
        new_layer: List[float] = list(layer)
        new_mask = bytearray(mask)
        t_x = truss[eid]
        affected_levels: Set[int] = {int(t_x)}
        for f in followers:
            k = int(truss[f])
            new_truss[f] = k + 1
            affected_levels.add(k)
            affected_levels.add(k + 1)
        new_truss[eid] = _INF
        new_layer[eid] = _INF
        new_mask[eid] = 1
        # Levels above t(x) where the anchor's new permanent presence closes
        # a triangle with a still-present partner: their waves gain support.
        for a, b, _w in index.edge_triangles[eid]:
            for c, d in ((a, b), (b, a)):
                tc = new_truss[c]
                if t_x < tc != _INF and new_truss[d] >= tc:
                    affected_levels.add(int(tc))

        # One pass grouping the members of the affected hulls (and the new
        # k_max, which the same scan yields for free).
        members_by_level: Dict[int, List[int]] = {k: [] for k in affected_levels}
        k_max = 1
        for e2 in range(m):
            t = new_truss[e2]
            if t == _INF:
                continue
            if t > k_max:
                k_max = int(t)
            bucket = members_by_level.get(t)
            if bucket is not None:
                bucket.append(e2)
        for k, members in members_by_level.items():
            if members:
                _repeel_hull_layers(index, new_truss, new_layer, k, members)

        anchor_set = frozenset(state.anchors | {new_anchor})
        # Anchors already hold inf in the dense arrays; the tuple-domain
        # dicts materialise lazily from them if a consumer ever asks.
        decomposition = TrussDecomposition.from_dense(
            index.edge_of,
            new_truss,
            new_layer,
            anchor_set,
            k_max,
            (index, new_truss, new_layer, new_mask),
        )
        new_state = TrussState(graph=self.graph, anchors=anchor_set, decomposition=decomposition)

        # Record the commit delta for the incremental tree patch: the exact
        # followers plus every edge whose trussness OR layer moved (scanning
        # only the re-peeled hulls — layer changes cannot occur elsewhere,
        # which is invariant 3 of the incremental re-peel).
        changed: Set[int] = {eid}
        changed.update(followers)
        for members in members_by_level.values():
            for e2 in members:
                if new_layer[e2] != layer[e2] or new_truss[e2] != truss[e2]:
                    changed.add(e2)
        self._deltas.append(
            CommitDelta(
                anchor_eid=eid,
                follower_eids=tuple(sorted(followers)),
                changed_eids=frozenset(changed),
                # The chained state is only kept while a tree exists to
                # consume it (the patch path); solvers that never read the
                # tree must not pin the whole chain in memory.
                state_after=new_state if self._tree is not None else None,
            )
        )
        return new_state

    def evaluate_gain(self, edge: Edge) -> int:
        """Trussness gain of anchoring ``edge`` on top of the current state.

        This is BASE's per-candidate evaluation: a re-peel restricted to the
        dirty region (with the full-peel fallback), diffed against the
        current state.  By Lemma 1 the diff equals the follower count.
        """
        state = self.state
        index = self.index
        eid = index.eid_of[self.graph.require_edge(edge)]
        _index, truss, _layer, mask = state.kernel_views()
        if mask[eid]:
            raise InvalidParameterError(f"edge {edge!r} is already anchored")
        m = index.num_edges
        dirty = _dirty_closure(index, truss, eid, self.full_peel_threshold * m)
        if dirty is None:
            self.stats["full_gain_evals"] += 1
            eid_of = index.eid_of
            anchor_eids = [eid_of[a] for a in state.anchors]
            anchor_eids.append(eid)
            new_truss, _new_layer, _k_max = peel_trussness_fast(index, anchor_eids)
            gain = 0
            for e2 in range(m):
                if mask[e2] or e2 == eid:
                    continue
                gain += new_truss[e2] - truss[e2]
            return int(gain)
        self.stats["incremental_gain_evals"] += 1
        return len(_followers_on_arrays(index, truss, eid, dirty))

    def apply_anchor_to_arrays(
        self,
        truss: List[float],
        mask: bytearray,
        eid: int,
        anchored_eids: Sequence[int],
    ) -> Tuple[List[float], bytearray]:
        """Anchor ``eid`` on top of dense ``(truss, mask)`` overlay arrays.

        ``anchored_eids`` must list every eid already anchored in ``truss``
        (baseline anchors included) — the full-peel fallback re-anchors all
        of them.  Returns fresh arrays; the inputs are not mutated.  Layers
        are *not* maintained: this is the trussness-only chain primitive
        behind :meth:`evaluate_anchor_chain_gain` and the exact solver's
        prefix-shared enumeration.
        """
        index = self.index
        all_anchors = list(anchored_eids)
        all_anchors.append(eid)
        new_mask = bytearray(mask)
        new_mask[eid] = 1
        dirty = _dirty_closure(
            index, truss, eid, self.full_peel_threshold * index.num_edges
        )
        if dirty is None:
            self.stats["full_gain_evals"] += 1
            new_truss: List[float] = list(peel_trussness_fast(index, all_anchors)[0])
            for done in all_anchors:  # anchors carry the peeling sentinel 0
                new_truss[done] = _INF
        else:
            self.stats["incremental_gain_evals"] += 1
            new_truss = list(truss)
            for f in _followers_on_arrays(index, truss, eid, dirty):
                new_truss[f] += 1
            new_truss[eid] = _INF
        return new_truss, new_mask

    def evaluate_anchor_chain_gain(self, edges: Iterable[Edge]) -> int:
        """Gain of an arbitrary anchor set, chained one incremental step at a
        time from the original state (Definition 4).

        Convenience wrapper over :meth:`apply_anchor_to_arrays` for one-off
        subset evaluations (used by the equivalence tests and available to
        custom solvers).  The exact solver does *not* call it — it shares the
        arrays of common subset prefixes across its whole enumeration, which
        a per-subset chain cannot.
        """
        index = self.index
        m = index.num_edges
        eid_of = index.eid_of
        graph = self.graph
        _index, base_truss, _layer, base_mask = self.original_state.kernel_views()
        truss: List[float] = list(base_truss)
        mask = bytearray(base_mask)
        anchored = [eid_of[a] for a in self.original_state.anchors]
        for edge in edges:
            eid = eid_of[graph.require_edge(edge)]
            if mask[eid]:
                continue
            truss, mask = self.apply_anchor_to_arrays(truss, mask, eid, anchored)
            anchored.append(eid)
        gain = 0
        for e2 in range(m):
            if mask[e2] or base_mask[e2]:
                continue
            gain += truss[e2] - base_truss[e2]
        return int(gain)

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def solve(
        self,
        algorithm: str,
        budget: int,
        initial_anchors: Iterable[Edge] = (),
        **params: object,
    ) -> AnchorResult:
        """Run a registered solver against this session.

        ``algorithm`` is a registry name (see :func:`available_solvers`);
        ``initial_anchors`` are committed before round one; ``params`` are
        solver-specific knobs validated against the solver's declared
        parameter list (a typo fails loudly).  Convenience wrapper that
        builds the canonical (unbound) :class:`repro.api.SolveSpec` and
        delegates to :meth:`solve_spec`.
        """
        return self.solve_spec(
            SolveSpec(
                algorithm=algorithm,
                budget=budget,
                initial_anchors=tuple(initial_anchors),
                params=params,
            )
        )

    def solve_spec(self, spec: SolveSpec) -> AnchorResult:
        """Serve one canonical :class:`repro.api.SolveSpec` on this session.

        The single ingress every solve funnels through (the CLI, the Python
        API, the serving layer and the registry's graph-level convenience
        all end up here).  The spec's graph *source*, if any, is the
        caller's responsibility — :class:`repro.api.Session` and the
        serving layer verify it resolves to this engine's graph before
        calling.  Engine-construction options in the spec must match this
        engine (a mismatch would silently solve under different knobs than
        the spec asked for).  The session is reset first, so one engine can
        serve many solves while reusing its :class:`GraphIndex`, baseline
        state and baseline follower snapshot.
        """
        solver = get_solver(spec.algorithm)
        if solver.params is not None:
            unknown = {name for name, _v in spec.params} - set(solver.params)
            if unknown:
                raise InvalidParameterError(
                    f"unknown parameter(s) for solver {spec.algorithm!r}: "
                    f"{', '.join(sorted(unknown))}; accepted: "
                    f"{', '.join(sorted(solver.params)) or '(none)'}"
                )
        for option, value in spec.engine:
            own = getattr(self, option)
            if own != value:
                raise InvalidParameterError(
                    f"spec engine option {option}={value!r} does not match "
                    f"this engine's {option}={own!r}"
                )
        self.reset(spec.initial_anchors)
        self.solve_count += 1
        with _span("engine.solve_spec", algorithm=spec.algorithm, budget=spec.budget):
            return solver.fn(self, spec)

    def session_info(self) -> Dict[str, object]:
        """Session-level diagnostics for long-lived (cached) engines.

        Returns the solve count plus the lifetime re-peel counters (the
        accumulated :attr:`lifetime_stats` merged with the current solve's
        :attr:`stats`).  The serving layer attaches this to its responses so
        operators can see how warm a session actually is.
        """
        combined = dict(self.lifetime_stats)
        for key, value in self.stats.items():
            combined[key] = combined.get(key, 0) + value
        return {
            "solve_count": self.solve_count,
            "num_vertices": self.graph.num_vertices,
            "num_edges": self.graph.num_edges,
            "lifetime_stats": combined,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"SolverEngine(n={self.graph.num_vertices}, m={self.graph.num_edges}, "
            f"anchors={len(self.anchors)})"
        )


# ---------------------------------------------------------------------------
# Solver registry
# ---------------------------------------------------------------------------
SolverFn = Callable[[SolverEngine, SolveSpec], AnchorResult]

#: Engine-construction keywords accepted by :meth:`SolverSpec.__call__` and
#: stripped from the solver params.
_ENGINE_KWARGS = ("baseline_state", "full_peel_threshold", "tree_mode")


@dataclass(frozen=True)
class SolverSpec:
    """One registry entry: a named solver with its engine-level entry point.

    ``params`` declares the parameter names the solver reads from
    ``request.params``; :meth:`SolverEngine.solve` rejects anything else, so
    a typo'd keyword fails loudly instead of silently running with defaults.
    ``None`` (the default for third-party registrations) skips the check.

    ``randomized`` marks solvers whose result depends on randomness unless a
    ``seed`` parameter is supplied (the Rand/Sup/Tur baselines).  The serving
    layer consults it before memoising a result: a deterministic solver is a
    pure function of ``(graph, request)`` and can be answered from cache; a
    randomized one without a seed must be re-run every time.
    """

    name: str
    fn: SolverFn
    description: str = ""
    params: Optional[Tuple[str, ...]] = None
    randomized: bool = False

    def __call__(
        self, graph: Graph, budget: int, initial_anchors: Iterable[Edge] = (), **params: object
    ) -> AnchorResult:
        """Convenience graph-level invocation (builds a one-shot engine)."""
        engine_kwargs = {
            key: params.pop(key) for key in _ENGINE_KWARGS if key in params
        }
        engine = SolverEngine(graph, **engine_kwargs)  # type: ignore[arg-type]
        return engine.solve(self.name, budget, initial_anchors=initial_anchors, **params)


_REGISTRY: Dict[str, SolverSpec] = {}
_BUILTINS_LOADED = False


def _ensure_builtin_solvers() -> None:
    """Import the built-in solver modules so their registrations run.

    Deferred (instead of top-level imports) to keep this module free of
    cycles: the solver modules import the registry from here.
    """
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    _BUILTINS_LOADED = True
    import repro.core.exact  # noqa: F401
    import repro.core.gas  # noqa: F401
    import repro.core.greedy  # noqa: F401
    import repro.core.heuristics  # noqa: F401
    if os.environ.get("REPRO_FAULT_SOLVER") == "1":
        # The chaos suite armed fault injection (see repro.service.faults).
        # Registries are per-process, so a process-pool worker would not
        # know the test-only solver its coordinator registered; the env
        # flag survives the fork and re-registers it here.
        import repro.service.faults

        repro.service.faults.install_fault_solver()


def register_solver(
    name: str,
    fn: Optional[SolverFn] = None,
    description: str = "",
    replace: bool = False,
    params: Optional[Tuple[str, ...]] = None,
    randomized: bool = False,
) -> Callable[[SolverFn], SolverFn]:
    """Register ``fn`` under ``name`` (usable as a decorator).

    Registering an existing name raises unless ``replace=True`` — silently
    shadowing a solver is how benchmark tables go subtly wrong.  ``params``
    optionally declares the accepted ``request.params`` keys and
    ``randomized`` marks seed-dependent solvers (see :class:`SolverSpec`).
    """

    def _register(solver_fn: SolverFn) -> SolverFn:
        if not replace and name in _REGISTRY:
            raise InvalidParameterError(f"solver {name!r} is already registered")
        _REGISTRY[name] = SolverSpec(
            name=name,
            fn=solver_fn,
            description=description,
            params=params,
            randomized=randomized,
        )
        return solver_fn

    if fn is not None:
        return _register(fn)
    return _register


def get_solver(name: str) -> SolverSpec:
    """Look up a registered solver by name."""
    _ensure_builtin_solvers()
    try:
        return _REGISTRY[name]
    except KeyError as exc:
        raise InvalidParameterError(
            f"unknown solver {name!r}; registered: {', '.join(sorted(_REGISTRY))}"
        ) from exc


def available_solvers() -> List[str]:
    """Names of every registered solver, sorted."""
    _ensure_builtin_solvers()
    return sorted(_REGISTRY)


class _RegistryView(Mapping):
    """A live read-only mapping view over the solver registry.

    The CLI's solver table is an instance of this class, so a solver
    registered anywhere (including third-party code) shows up without any
    table edit.
    """

    def __getitem__(self, name: str) -> SolverSpec:
        _ensure_builtin_solvers()
        return _REGISTRY[name]

    def __iter__(self):
        _ensure_builtin_solvers()
        return iter(sorted(_REGISTRY))

    def __len__(self) -> int:
        _ensure_builtin_solvers()
        return len(_REGISTRY)


def solver_table() -> Mapping[str, SolverSpec]:
    """A live name -> solver mapping (the CLI's ``_SOLVERS`` view)."""
    return _RegistryView()


def solve(graph: Graph, budget: int, algorithm: str = "gas", **params: object) -> AnchorResult:
    """One-shot convenience: build an engine and run ``algorithm``.

    Equivalent to ``SolverEngine(graph).solve(algorithm, budget, **params)``
    with engine-construction keywords (``baseline_state``,
    ``full_peel_threshold``, ``tree_mode``) split off automatically.  Use a
    long-lived :class:`SolverEngine` instead when running several solves
    over the same graph.
    """
    return get_solver(algorithm)(graph, budget, **params)
