"""NP-hardness reduction gadget (Theorem 1, Fig. 2 of the paper).

Theorem 1 reduces the maximum-coverage problem to ATR: an instance with sets
``T_1..T_s`` over elements ``e_1..e_t`` is turned into a graph where

* each set ``T_i`` becomes an "anchor candidate" edge ``a_i`` with trussness
  ``|T_i| + 2``,
* each element ``e_j`` becomes a "follower" edge ``f_j`` whose trussness is
  pinned to ``t + 2`` by ``t`` triangles with (t+3)-clique edges,
* whenever ``e_j ∈ T_i`` the edges ``a_i`` and ``f_j`` close a triangle whose
  third edge belongs to a fresh (t+3)-clique,

so that anchoring ``a_i`` lifts exactly the ``f_j`` with ``e_j ∈ T_i`` by one
trussness level, anchoring several sets never lifts the same ``f_j`` twice,
and anchoring any edge outside ``{a_i}`` lifts nothing.  The optimal ATR
solution of budget ``b`` therefore covers exactly as many elements as the
optimal maximum-coverage solution.

Concrete realisation
--------------------
All gadget edges share a *hub* vertex ``h`` so that the required triangles
exist literally:

* ``f_j = (h, q_j)``; its ``t`` pinned triangles use fresh apex vertices
  ``r`` with the two edges ``(h, r)`` and ``(q_j, r)``, each embedded in its
  own (t+3)-clique so that both have trussness ``t + 3``.
* ``a_i = (h, y_i)``; for every covered element ``e_j`` the connector edge
  ``(y_i, q_j)`` is added and embedded in its own (t+3)-clique, which closes
  the triangle ``{a_i, f_j, (y_i, q_j)}``.

The test-suite verifies the claimed trussness values and the gain behaviour
on small instances, i.e. it *executes* the reduction rather than taking it
on faith.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from repro.graph.graph import Edge, Graph
from repro.utils.errors import InvalidParameterError


@dataclass(frozen=True)
class MaxCoverageInstance:
    """A maximum-coverage instance: ``sets[i]`` is the set of covered element indices."""

    num_elements: int
    sets: Tuple[FrozenSet[int], ...]

    @classmethod
    def from_lists(
        cls, sets: Sequence[Sequence[int]], num_elements: int | None = None
    ) -> "MaxCoverageInstance":
        frozen = tuple(frozenset(s) for s in sets)
        elements: Set[int] = set().union(*frozen) if frozen else set()
        if num_elements is None:
            num_elements = (max(elements) + 1) if elements else 0
        if any(e < 0 or e >= num_elements for e in elements):
            raise InvalidParameterError("element indices must lie in [0, num_elements)")
        return cls(num_elements=num_elements, sets=frozen)

    def coverage(self, chosen: Sequence[int]) -> int:
        covered: Set[int] = set()
        for index in chosen:
            covered |= self.sets[index]
        return len(covered)

    def best_coverage(self, budget: int) -> int:
        """Optimal coverage by brute force (instances used in tests are tiny)."""
        best = 0
        indices = range(len(self.sets))
        for subset in itertools.combinations(indices, min(budget, len(self.sets))):
            best = max(best, self.coverage(subset))
        return best


@dataclass
class AtrReduction:
    """The ATR instance produced from a coverage instance."""

    graph: Graph
    hub: int
    set_edges: List[Edge]
    element_edges: List[Edge]
    clique_size: int
    instance: MaxCoverageInstance = field(repr=False)

    @property
    def expected_element_trussness(self) -> int:
        """Every element edge f_j has trussness t + 2 before anchoring."""
        return self.instance.num_elements + 2

    def expected_set_trussness(self, set_index: int) -> int:
        """Every set edge a_i has trussness |T_i| + 2 before anchoring."""
        return len(self.instance.sets[set_index]) + 2


class _VertexFactory:
    """Hands out fresh integer vertex ids."""

    def __init__(self, start: int = 0) -> None:
        self._next = start

    def take(self, count: int = 1) -> List[int]:
        result = list(range(self._next, self._next + count))
        self._next += count
        return result

    def one(self) -> int:
        return self.take(1)[0]


def _add_clique(graph: Graph, vertices: Sequence[int]) -> None:
    for u, v in itertools.combinations(vertices, 2):
        graph.add_edge(u, v)


def build_atr_instance_from_coverage(instance: MaxCoverageInstance) -> AtrReduction:
    """Build the Theorem-1 gadget for ``instance`` (see module docstring)."""
    if instance.num_elements < 1 or not instance.sets:
        raise InvalidParameterError("the coverage instance must have sets and elements")
    t = instance.num_elements
    clique_size = t + 3
    factory = _VertexFactory()
    graph = Graph()

    hub = factory.one()
    graph.add_vertex(hub)

    # Element edges f_j = (hub, q_j).
    element_vertices = factory.take(t)
    element_edges = [graph.add_edge(hub, q) for q in element_vertices]

    # Set edges a_i = (hub, y_i).
    set_vertices = factory.take(len(instance.sets))
    set_edges = [graph.add_edge(hub, y) for y in set_vertices]

    # Pin every f_j to trussness t + 2 with t triangles whose two other edges
    # each live in their own (t+3)-clique.
    for q in element_vertices:
        for _ in range(t):
            apex = factory.one()
            graph.add_edge(hub, apex)
            graph.add_edge(q, apex)
            _add_clique(graph, [hub, apex] + factory.take(clique_size - 2))
            _add_clique(graph, [q, apex] + factory.take(clique_size - 2))

    # Join a_i with every covered f_j through a connector edge (y_i, q_j)
    # embedded in its own (t+3)-clique.
    for y, covered in zip(set_vertices, instance.sets):
        for element_index in sorted(covered):
            q = element_vertices[element_index]
            graph.add_edge(y, q)
            _add_clique(graph, [y, q] + factory.take(clique_size - 2))

    return AtrReduction(
        graph=graph,
        hub=hub,
        set_edges=set_edges,
        element_edges=element_edges,
        clique_size=clique_size,
        instance=instance,
    )
