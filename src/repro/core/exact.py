"""Exhaustive (exact) solver for the ATR problem.

The ATR problem is NP-hard (Theorem 1), so the exact solver simply
enumerates every size-``b`` subset of candidate edges and keeps the best.
It exists for two reasons:

* the quality experiment of the paper (Fig. 5) compares GAS against the
  exact optimum on small extracted subgraphs with ``b <= 3``;
* the test-suite uses it to check that the greedy solvers never beat the
  optimum and are usually close to it.

A guard refuses instances whose enumeration would be astronomically large,
so that a mistyped benchmark configuration fails fast instead of hanging.
"""

from __future__ import annotations

import itertools
import math
import time
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core.result import AnchorResult, evaluate_anchor_set
from repro.graph.graph import Edge, Graph
from repro.truss.state import TrussState
from repro.utils.errors import InvalidParameterError


def _combination_count(n: int, k: int) -> int:
    return math.comb(n, k)


def exact_atr(
    graph: Graph,
    budget: int,
    candidates: Optional[Sequence[Edge]] = None,
    max_combinations: int = 2_000_000,
) -> AnchorResult:
    """Find the optimal anchor set by exhaustive enumeration.

    Parameters
    ----------
    graph:
        Input graph.
    budget:
        Anchor budget ``b`` (every subset of exactly ``b`` candidates is
        evaluated; if fewer candidates than ``b`` exist the whole candidate
        set is the only option).
    candidates:
        Candidate edge pool; defaults to every edge of the graph.
    max_combinations:
        Safety limit on the number of subsets to evaluate.
    """
    if budget < 0:
        raise InvalidParameterError("budget must be non-negative")
    start = time.perf_counter()

    pool: List[Edge] = (
        [graph.require_edge(e) for e in candidates]
        if candidates is not None
        else graph.edge_list()
    )
    effective_budget = min(budget, len(pool))
    total = _combination_count(len(pool), effective_budget)
    if total > max_combinations:
        raise InvalidParameterError(
            f"exact enumeration of C({len(pool)}, {effective_budget}) = {total} subsets "
            f"exceeds the limit of {max_combinations}; use a smaller instance"
        )

    baseline = TrussState.compute(graph)
    best_gain = -1
    best_set: Tuple[Edge, ...] = ()
    for subset in itertools.combinations(pool, effective_budget):
        anchored = baseline.with_anchors(subset)
        gain = anchored.trussness_gain_from(baseline)
        if gain > best_gain:
            best_gain = gain
            best_set = subset

    elapsed = time.perf_counter() - start
    result = evaluate_anchor_set(
        graph,
        best_set,
        algorithm="Exact",
        elapsed_seconds=elapsed,
        baseline_state=baseline,
    )
    result.extra["evaluated_subsets"] = total
    return result
