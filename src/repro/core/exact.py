"""Exhaustive (exact) solver for the ATR problem.

The ATR problem is NP-hard (Theorem 1), so the exact solver simply
enumerates every size-``b`` subset of candidate edges and keeps the best.
It exists for two reasons:

* the quality experiment of the paper (Fig. 5) compares GAS against the
  exact optimum on small extracted subgraphs with ``b <= 3``;
* the test-suite uses it to check that the greedy solvers never beat the
  optimum and are usually close to it.

A guard refuses instances whose enumeration would be astronomically large,
so that a mistyped benchmark configuration fails fast instead of hanging.

Through the :class:`~repro.core.engine.SolverEngine` each subset is scored
by chaining the incremental re-peel one anchor at a time from the original
state (with the usual full-peel fallback) instead of running a whole-graph
anchored decomposition per subset; the pre-engine implementation is kept as
:func:`exact_atr_reference` for the equivalence tests.
"""

from __future__ import annotations

import itertools
import math
import time
from typing import List, Optional, Sequence, Tuple

from repro.api.spec import SolveSpec
from repro.core.engine import SolverEngine, register_solver
from repro.core.result import AnchorResult, evaluate_anchor_set
from repro.graph.graph import Edge, Graph
from repro.truss.state import TrussState
from repro.utils.errors import InvalidParameterError

DEFAULT_MAX_COMBINATIONS = 2_000_000


def _combination_count(n: int, k: int) -> int:
    return math.comb(n, k)


def _candidate_pool(graph: Graph, candidates: Optional[Sequence[Edge]]) -> List[Edge]:
    return (
        [graph.require_edge(e) for e in candidates]
        if candidates is not None
        else graph.edge_list()
    )


def _check_enumeration(pool: List[Edge], budget: int, max_combinations: int) -> Tuple[int, int]:
    if budget < 0:
        raise InvalidParameterError("budget must be non-negative")
    effective_budget = min(budget, len(pool))
    total = _combination_count(len(pool), effective_budget)
    if total > max_combinations:
        raise InvalidParameterError(
            f"exact enumeration of C({len(pool)}, {effective_budget}) = {total} subsets "
            f"exceeds the limit of {max_combinations}; use a smaller instance"
        )
    return effective_budget, total


@register_solver(
    "exact",
    description="exhaustive optimum via chained incremental re-peels",
    params=("candidates", "max_combinations"),
)
def _solve_exact(engine: SolverEngine, request: SolveSpec) -> AnchorResult:
    request.reject_initial_anchors("exact")
    graph = engine.graph
    start = time.perf_counter()
    pool = _candidate_pool(graph, request.param("candidates"))
    max_combinations = int(request.param("max_combinations", DEFAULT_MAX_COMBINATIONS))
    effective_budget, total = _check_enumeration(pool, request.budget, max_combinations)

    # Enumerate the subsets depth-first in lexicographic (= combinations)
    # order, sharing the anchored trussness arrays of every common prefix:
    # each tree node pays one incremental step instead of each *leaf* paying
    # a whole chain, and a strict improvement check keeps the first maximum
    # exactly like the reference loop does.
    index = engine.index
    m = index.num_edges
    eid_of = index.eid_of
    _ix, base_truss, _layer, base_mask = engine.original_state.kernel_views()
    pool_eids = [eid_of[e] for e in pool]
    n = len(pool)

    best_gain = -1
    best_set: Tuple[Edge, ...] = ()
    anchored = [eid_of[a] for a in engine.original_state.anchors]
    chosen: List[Edge] = []

    def descend(start_index: int, depth: int, truss: List[float], mask: bytearray) -> None:
        nonlocal best_gain, best_set
        if depth == effective_budget:
            gain = 0
            for e2 in range(m):
                if not mask[e2]:
                    gain += truss[e2] - base_truss[e2]
            if gain > best_gain:
                best_gain = int(gain)
                best_set = tuple(chosen)
            return
        for i in range(start_index, n - (effective_budget - depth) + 1):
            eid = pool_eids[i]
            chosen.append(pool[i])
            if mask[eid]:  # duplicate candidate: anchoring again is a no-op
                descend(i + 1, depth + 1, truss, mask)
            else:
                next_truss, next_mask = engine.apply_anchor_to_arrays(
                    truss, mask, eid, anchored
                )
                anchored.append(eid)
                descend(i + 1, depth + 1, next_truss, next_mask)
                anchored.pop()
            chosen.pop()

    descend(0, 0, list(base_truss), bytearray(base_mask))

    elapsed = time.perf_counter() - start
    result = evaluate_anchor_set(
        graph,
        best_set,
        algorithm="Exact",
        elapsed_seconds=elapsed,
        baseline_state=engine.original_state,
    )
    result.extra["evaluated_subsets"] = total
    result.extra["engine"] = dict(engine.stats)
    return result


def exact_atr(
    graph: Graph,
    budget: int,
    candidates: Optional[Sequence[Edge]] = None,
    max_combinations: int = DEFAULT_MAX_COMBINATIONS,
) -> AnchorResult:
    """Find the optimal anchor set by exhaustive enumeration.

    Parameters
    ----------
    graph:
        Input graph.
    budget:
        Anchor budget ``b`` (every subset of exactly ``b`` candidates is
        evaluated; if fewer candidates than ``b`` exist the whole candidate
        set is the only option).
    candidates:
        Candidate edge pool; defaults to every edge of the graph.
    max_combinations:
        Safety limit on the number of subsets to evaluate.
    """
    engine = SolverEngine(graph)
    return engine.solve(
        "exact", budget, candidates=candidates, max_combinations=max_combinations
    )


def exact_atr_reference(
    graph: Graph,
    budget: int,
    candidates: Optional[Sequence[Edge]] = None,
    max_combinations: int = DEFAULT_MAX_COMBINATIONS,
) -> AnchorResult:
    """Pre-engine exact solver: one full anchored decomposition per subset.

    Kept as the ground truth for the engine equivalence tests.
    """
    start = time.perf_counter()
    pool = _candidate_pool(graph, candidates)
    effective_budget, total = _check_enumeration(pool, budget, max_combinations)

    baseline = TrussState.compute(graph)
    best_gain = -1
    best_set: Tuple[Edge, ...] = ()
    for subset in itertools.combinations(pool, effective_budget):
        anchored = baseline.with_anchors(subset)
        gain = anchored.trussness_gain_from(baseline)
        if gain > best_gain:
            best_gain = gain
            best_set = subset

    elapsed = time.perf_counter() - start
    result = evaluate_anchor_set(
        graph,
        best_set,
        algorithm="Exact",
        elapsed_seconds=elapsed,
        baseline_state=baseline,
    )
    result.extra["evaluated_subsets"] = total
    return result
