"""Truss component tree (Section III-C, Algorithm 4 of the paper).

The tree organises every non-anchored edge of the graph into nodes:

* all edges of a node share the same trussness ``TN.K``;
* the edges in the subtree rooted at a node induce a (TN.K)-truss component
  (a maximal k-truss whose edges are pairwise triangle-connected);
* the node id ``TN.I`` is the smallest edge id contained in the node, which
  makes ids stable across rebuilds as long as the node's edge set does not
  change.

On top of the tree the *subtree adjacency* ``sla(e)`` is defined: the ids of
the nodes that contain a neighbour-edge of ``e`` with trussness at least
``t(e)``.  Lemma 4 states that the followers of an anchored edge are
contained in the union of its ``sla`` nodes, which is what makes per-node
caching of follower sets (GAS, Algorithm 6) possible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.graph.graph import Edge, Graph, normalize_edge
from repro.graph.triangles import triangle_connected_components
from repro.truss.state import TrussState
from repro.utils.errors import InvalidEdgeError, InvalidParameterError


@dataclass
class TreeNode:
    """One node of the truss component tree.

    Attributes map one-to-one onto the paper's notation (Table II):
    ``node_id`` is ``TN.I``, ``k`` is ``TN.K``, ``edges`` is ``TN.E``,
    ``parent`` is ``TN.P`` (as a node id) and ``children`` is ``TN.C``.
    """

    node_id: int
    k: int
    edges: FrozenSet[Edge]
    parent: Optional[int] = None
    children: List[int] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.edges)


class TrussComponentTree:
    """The truss component tree of a :class:`TrussState`."""

    def __init__(
        self,
        nodes: Dict[int, TreeNode],
        node_of_edge: Dict[Edge, int],
        roots: List[int],
        state: TrussState,
    ) -> None:
        self.nodes = nodes
        self.node_of_edge = node_of_edge
        self.roots = roots
        self.state = state

    # ------------------------------------------------------------------
    # Construction (Algorithm 4)
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, state: TrussState) -> "TrussComponentTree":
        """Build the tree bottom-up over increasing trussness values.

        The construction is equivalent to the recursive BuildTree of the
        paper: for every trussness value ``k`` (in increasing order) the
        triangle-connected components of the subgraph formed by all edges of
        trussness ``>= k`` (anchored edges included, since they belong to
        every truss) are computed; the trussness-k edges of each component
        form one tree node whose parent is the node created for the
        enclosing component at the previous trussness value.
        """
        graph = state.graph
        trussness = state.decomposition.trussness
        anchors = state.anchors

        nodes: Dict[int, TreeNode] = {}
        node_of_edge: Dict[Edge, int] = {}
        roots: List[int] = []
        # Deepest node created so far whose component contains the edge.
        enclosing: Dict[Edge, Optional[int]] = {e: None for e in graph.edges()}

        levels = sorted(set(trussness.values()))
        for k in levels:
            member_edges = [e for e, t in trussness.items() if t >= k]
            member_edges.extend(anchors)
            if not member_edges:
                continue
            components = triangle_connected_components(graph, member_edges)
            for component in components:
                level_edges = frozenset(
                    e for e in component if e not in anchors and trussness[e] == k
                )
                if not level_edges:
                    # No trussness-k edges here: the component surfaces again
                    # at a deeper level; nothing to record now.
                    continue
                node_id = min(graph.edge_id(e) for e in level_edges)
                parent_id = enclosing[next(iter(level_edges))]
                node = TreeNode(node_id=node_id, k=k, edges=level_edges, parent=parent_id)
                nodes[node_id] = node
                if parent_id is None:
                    roots.append(node_id)
                else:
                    nodes[parent_id].children.append(node_id)
                for edge in level_edges:
                    node_of_edge[edge] = node_id
                for edge in component:
                    enclosing[edge] = node_id
        return cls(nodes=nodes, node_of_edge=node_of_edge, roots=roots, state=state)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def node_of(self, edge: Edge) -> TreeNode:
        """The tree node containing ``edge`` (``T[e]`` in the paper)."""
        edge = normalize_edge(*edge)
        try:
            return self.nodes[self.node_of_edge[edge]]
        except KeyError as exc:
            raise InvalidEdgeError(edge, f"edge {edge!r} is not assigned to any tree node") from exc

    def subtree_node_ids(self, node_id: int) -> List[int]:
        """Ids of the subtree rooted at ``node_id`` (pre-order)."""
        if node_id not in self.nodes:
            raise InvalidParameterError(f"unknown tree node id {node_id}")
        order: List[int] = []
        stack = [node_id]
        while stack:
            current = stack.pop()
            order.append(current)
            stack.extend(self.nodes[current].children)
        return order

    def subtree_edges(self, node_id: int) -> Set[Edge]:
        """All edges in the subtree rooted at ``node_id``.

        By construction these induce a (TN.K)-truss component of the graph.
        """
        edges: Set[Edge] = set()
        for nid in self.subtree_node_ids(node_id):
            edges |= self.nodes[nid].edges
        return edges

    def sla(self, edge: Edge) -> Set[int]:
        """Subtree adjacency node ids of ``edge`` (Table II).

        ``id ∈ sla(e)`` iff some neighbour-edge ``e'`` of ``e`` has
        ``t(e') >= t(e)`` and lives in the node with that id.
        """
        edge = self.state.graph.require_edge(edge)
        t_edge = self.state.trussness(edge)
        result: Set[int] = set()
        for e1, e2, _w in self.state.triangles(edge):
            for neighbour in (e1, e2):
                if self.state.is_anchor(neighbour):
                    continue
                if self.state.trussness(neighbour) >= t_edge:
                    result.add(self.node_of_edge[neighbour])
        return result

    def sla_map(self, edges: Optional[Iterable[Edge]] = None) -> Dict[Edge, Set[int]]:
        """``sla(e)`` for every requested edge (default: every non-anchored edge)."""
        if edges is None:
            edges = list(self.state.non_anchor_edges())
        return {edge: self.sla(edge) for edge in edges}

    def node_signature(self, node_id: int) -> Tuple[FrozenSet[Edge], Tuple[Tuple[Edge, float, float], ...]]:
        """A comparable signature of a node: its edge set plus (t, l) of each edge.

        Two trees expose the same signature for a node id exactly when the
        node's edge membership, trussness and peeling layers are all
        unchanged — the precondition under which cached follower results for
        that node stay valid (Lemma 5 plus the conservative extension
        described in DESIGN.md §3.3).
        """
        node = self.nodes[node_id]
        detail = tuple(
            sorted(
                (edge, float(self.state.trussness(edge)), float(self.state.layer(edge)))
                for edge in node.edges
            )
        )
        return node.edges, detail

    def signatures(self) -> Dict[int, Tuple[FrozenSet[Edge], Tuple[Tuple[Edge, float, float], ...]]]:
        """Signatures of every node, keyed by node id."""
        return {node_id: self.node_signature(node_id) for node_id in self.nodes}

    # ------------------------------------------------------------------
    # Introspection helpers (used by tests and the reuse statistics)
    # ------------------------------------------------------------------
    def depth(self) -> int:
        """Length of the longest root-to-leaf path (number of nodes)."""
        best = 0
        for root in self.roots:
            stack = [(root, 1)]
            while stack:
                node_id, depth = stack.pop()
                best = max(best, depth)
                for child in self.nodes[node_id].children:
                    stack.append((child, depth + 1))
        return best

    def __len__(self) -> int:
        return len(self.nodes)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"TrussComponentTree(nodes={len(self.nodes)}, roots={len(self.roots)})"
