"""Truss component tree (Section III-C, Algorithm 4 of the paper).

The tree organises every non-anchored edge of the graph into nodes:

* all edges of a node share the same trussness ``TN.K``;
* the edges in the subtree rooted at a node induce a (TN.K)-truss component
  (a maximal k-truss whose edges are pairwise triangle-connected);
* the node id ``TN.I`` is the smallest edge id contained in the node, which
  makes ids stable across rebuilds as long as the node's edge set does not
  change.

On top of the tree the *subtree adjacency* ``sla(e)`` is defined: the ids of
the nodes that contain a neighbour-edge of ``e`` with trussness at least
``t(e)``.  Lemma 4 states that the followers of an anchored edge are
contained in the union of its ``sla`` nodes, which is what makes per-node
caching of follower sets (GAS, Algorithm 6) possible.

Construction runs in the integer domain of the shared
:class:`~repro.graph.index.GraphIndex`: per trussness level, an integer
union-find over the precomputed triangle triples yields the components, and
one additional pass over the triples precomputes ``sla`` for *every* edge at
once (the GAS loop queries ``sla`` for each candidate in each round).  The
seed implementation is preserved as :meth:`TrussComponentTree.build_reference`
for the equivalence tests and the before/after benchmark.

Since PR 3 the tree is also **incrementally maintainable**: after an
incrementally re-peeled commit, :meth:`TrussComponentTree.apply_commit`
patches only the nodes whose trussness levels were touched (departures,
arrivals, merges and ``sla`` updates along dirty paths — see
docs/ARCHITECTURE.md for the invariants) instead of rebuilding, and
returns the exact follower-reuse invalidation of that commit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.graph.graph import Edge, Graph, normalize_edge
from repro.graph.index import GraphIndex
from repro.graph.triangles import triangle_connected_components_reference
from repro.truss.state import TrussState
from repro.utils.errors import InvalidEdgeError, InvalidParameterError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine imports us)
    from repro.core.engine import CommitDelta

#: ``node_of_eid`` sentinel for anchored edges (members of no tree node).
ANCHOR_NODE = -1
#: Transient ``node_of_eid`` sentinel used *during* :meth:`TrussComponentTree.apply_commit`
#: for followers that departed their old node but have not been re-inserted yet.
_PENDING_NODE = -2


@dataclass
class TreePatchInfo:
    """What one :meth:`TrussComponentTree.apply_commit` call invalidated.

    ``invalid_node_ids`` reproduces, for this single commit, exactly the node
    ids that :func:`repro.core.reuse.compute_reuse_decision` would flag when
    diffing the pre-patch tree against the post-patch tree (structurally
    touched nodes, the nodes hosting every trussness/layer-changed edge
    before and after, the anchor's old ``sla`` nodes and its old node).
    ``dirty_candidate_eids`` is the set of candidate edges whose cached
    follower entries can possibly have changed — the union of the changed
    edges, every edge whose ``sla`` set was modified by the patch, and every
    edge whose (post-patch) ``sla`` references an invalidated node.  Edges
    outside this set are guaranteed fully reusable, which is what lets the
    GAS candidate heap skip them without rescanning.
    """

    invalid_node_ids: Set[int] = field(default_factory=set)
    dirty_candidate_eids: Set[int] = field(default_factory=set)


@dataclass(slots=True)
class TreeNode:
    """One node of the truss component tree.

    Attributes map one-to-one onto the paper's notation (Table II):
    ``node_id`` is ``TN.I``, ``k`` is ``TN.K``, ``edges`` is ``TN.E``,
    ``parent`` is ``TN.P`` (as a node id) and ``children`` is ``TN.C``.
    ``edge_ids`` carries the same edge set as dense kernel ids (empty for
    trees built by :meth:`TrussComponentTree.build_reference`).
    """

    node_id: int
    k: int
    edges: FrozenSet[Edge]
    parent: Optional[int] = None
    children: List[int] = field(default_factory=list)
    edge_ids: FrozenSet[int] = frozenset()

    def __len__(self) -> int:
        return len(self.edges)


class TrussComponentTree:
    """The truss component tree of a :class:`TrussState`.

    Built once per state with :meth:`build` (single union-find pass in the
    dense-id domain, ``sla`` precomputed for every edge) and — new in PR 3 —
    advanced **in place** across committed anchors with :meth:`apply_commit`,
    which touches only the nodes whose trussness levels changed.  The seed
    construction survives as :meth:`build_reference`; patched trees are
    asserted structurally identical to rebuilt ones by the test-suite.
    """

    def __init__(
        self,
        nodes: Dict[int, TreeNode],
        node_of_edge: Dict[Edge, int],
        roots: List[int],
        state: TrussState,
        sla_sets: Optional[List[Optional[Set[int]]]] = None,
        node_of_eid: Optional[List[int]] = None,
    ) -> None:
        self.nodes = nodes
        self.node_of_edge = node_of_edge
        self.roots = roots
        self.state = state
        # Per-dense-edge-id precomputed sla sets (None for reference trees,
        # which fall back to the per-edge computation).
        self._sla_sets = sla_sets
        # Dense eid -> node id (-1 for anchors), kernel-built trees only.
        self._node_of_eid = node_of_eid
        # Reverse sla index (node id -> eids whose sla contains it), built
        # lazily on the first incremental patch / heap invalidation.
        self._sla_ref: Optional[Dict[int, Set[int]]] = None
        self._signatures_cache: Optional[
            Dict[int, Tuple[FrozenSet[Edge], Tuple[Tuple[Edge, float, float], ...]]]
        ] = None

    # ------------------------------------------------------------------
    # Construction (Algorithm 4)
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, state: TrussState) -> "TrussComponentTree":
        """Build the tree bottom-up over increasing trussness values.

        The construction is equivalent to the recursive BuildTree of the
        paper (one node per triangle-connected component of trussness-k
        edges, parent = enclosing component at the previous trussness value)
        but runs a *single* union-find over the triangle triples, processing
        trussness levels in decreasing order: a triangle becomes active at
        the minimum trussness of its three edges, so each triangle is
        unioned exactly once instead of once per level.  Parent links are
        recovered by keeping, per component, the list of nodes that have not
        been claimed by an enclosing node yet; the node created for a
        component claims them as children.
        """
        index, trussness_of, _layer_of, anchor_mask = state.kernel_views()
        m = index.num_edges
        edge_of = index.edge_of
        stable_ids = index.stable_ids

        # Edges grouped by trussness; triangles grouped by the level at which
        # they become active (min trussness; all-anchor triangles are active
        # everywhere).  Both int keys; anchors hold inf in trussness_of.
        edges_by_level: Dict[int, List[int]] = {}
        for eid in range(m):
            t = trussness_of[eid]
            if t != math.inf:
                edges_by_level.setdefault(t, []).append(eid)
        tris_by_level: Dict[float, List[Tuple[int, int, int]]] = {}
        for triple in index.triangles:
            e1, e2, e3 = triple
            level = min(trussness_of[e1], trussness_of[e2], trussness_of[e3])
            tris_by_level.setdefault(level, []).append(triple)

        parent = list(range(m))

        def find(e: int) -> int:
            root = e
            while parent[root] != root:
                root = parent[root]
            while parent[e] != root:
                parent[e], e = root, parent[e]
            return root

        # Per union-find root: the nodes inside the component that still have
        # no parent (they will be claimed by the next enclosing node).
        orphans: Dict[int, List[int]] = {}

        def union(a: int, b: int) -> None:
            ra, rb = find(a), find(b)
            if ra == rb:
                return
            parent[rb] = ra
            merged = orphans.pop(rb, None)
            if merged:
                existing = orphans.get(ra)
                if existing:
                    existing.extend(merged)
                else:
                    orphans[ra] = merged

        # Triangles between three anchored edges connect components at every
        # level, so they are activated before the deepest level.
        for e1, e2, e3 in tris_by_level.pop(math.inf, ()):
            union(e1, e2)
            union(e1, e3)

        nodes: Dict[int, TreeNode] = {}
        node_of_edge: Dict[Edge, int] = {}

        for k in sorted(edges_by_level, reverse=True):
            for e1, e2, e3 in tris_by_level.get(k, ()):
                union(e1, e2)
                union(e1, e3)

            components: Dict[int, List[int]] = {}
            for eid in edges_by_level[k]:
                components.setdefault(find(eid), []).append(eid)

            edge_lookup = edge_of.__getitem__
            for root, level_ids in components.items():
                # level_ids is ascending (edges_by_level preserves eid order),
                # so the smallest public edge id is the first entry's.
                node_id = stable_ids[level_ids[0]]
                level_edges = frozenset(map(edge_lookup, level_ids))
                node = TreeNode(
                    node_id=node_id,
                    k=k,
                    edges=level_edges,
                    edge_ids=frozenset(level_ids),
                )
                nodes[node_id] = node
                unclaimed = orphans.get(root)
                if unclaimed:
                    for child_id in unclaimed:
                        nodes[child_id].parent = node_id
                    node.children.extend(unclaimed)
                    unclaimed.clear()
                    unclaimed.append(node_id)
                else:
                    orphans[root] = [node_id]
                for eid in level_ids:
                    node_of_edge[edge_of[eid]] = node_id

        # Nodes never claimed by an enclosing component are the tree roots.
        roots = [node_id for unclaimed in orphans.values() for node_id in unclaimed]

        node_of_eid = [-1] * m
        for node in nodes.values():
            nid = node.node_id
            for eid in node.edge_ids:
                node_of_eid[eid] = nid

        sla_sets = cls._precompute_sla(index, trussness_of, anchor_mask, node_of_eid)
        return cls(
            nodes=nodes,
            node_of_edge=node_of_edge,
            roots=roots,
            state=state,
            sla_sets=sla_sets,
            node_of_eid=node_of_eid,
        )

    @staticmethod
    def _precompute_sla(
        index: GraphIndex,
        trussness_of: List[float],
        anchor_mask: bytearray,
        node_of_eid: List[int],
    ) -> List[Optional[Set[int]]]:
        """One pass over the triangle triples computing ``sla`` for all edges."""
        m = index.num_edges
        # Lazily allocated: edges outside any triangle (the majority on
        # sparse graphs) keep a shared None slot instead of an empty set.
        sla_sets: List[Optional[Set[int]]] = [None] * m

        def add(target: int, node_id: int) -> None:
            entry = sla_sets[target]
            if entry is None:
                sla_sets[target] = {node_id}
            else:
                entry.add(node_id)

        for e1, e2, e3 in index.triangles:
            t1, t2, t3 = trussness_of[e1], trussness_of[e2], trussness_of[e3]
            a1, a2, a3 = anchor_mask[e1], anchor_mask[e2], anchor_mask[e3]
            if not a1:
                n1 = node_of_eid[e1]
                if not a2 and t1 >= t2:
                    add(e2, n1)
                if not a3 and t1 >= t3:
                    add(e3, n1)
            if not a2:
                n2 = node_of_eid[e2]
                if not a1 and t2 >= t1:
                    add(e1, n2)
                if not a3 and t2 >= t3:
                    add(e3, n2)
            if not a3:
                n3 = node_of_eid[e3]
                if not a1 and t3 >= t1:
                    add(e1, n3)
                if not a2 and t3 >= t2:
                    add(e2, n3)
        return sla_sets

    @classmethod
    def build_reference(cls, state: TrussState) -> "TrussComponentTree":
        """Seed (tuple-domain) implementation of Algorithm 4.

        Kept verbatim — including the per-level calls to the reference
        triangle connectivity — as ground truth for the kernel equivalence
        tests and as the "before" bar of ``benchmarks/bench_kernel.py``.
        Trees built this way compute ``sla`` per edge on demand.
        """
        graph = state.graph
        trussness = state.decomposition.trussness
        anchors = state.anchors
        eid_of = state.index.eid_of  # only used to fill TreeNode.edge_ids

        nodes: Dict[int, TreeNode] = {}
        node_of_edge: Dict[Edge, int] = {}
        roots: List[int] = []
        enclosing: Dict[Edge, Optional[int]] = {e: None for e in graph.edges()}

        levels = sorted(set(trussness.values()))
        for k in levels:
            member_edges = [e for e, t in trussness.items() if t >= k]
            member_edges.extend(anchors)
            if not member_edges:
                continue
            components = triangle_connected_components_reference(graph, member_edges)
            for component in components:
                level_edges = frozenset(
                    e for e in component if e not in anchors and trussness[e] == k
                )
                if not level_edges:
                    continue
                node_id = min(graph.edge_id(e) for e in level_edges)
                parent_id = enclosing[next(iter(level_edges))]
                node = TreeNode(
                    node_id=node_id,
                    k=k,
                    edges=level_edges,
                    parent=parent_id,
                    edge_ids=frozenset(eid_of[e] for e in level_edges),
                )
                nodes[node_id] = node
                if parent_id is None:
                    roots.append(node_id)
                else:
                    nodes[parent_id].children.append(node_id)
                for edge in level_edges:
                    node_of_edge[edge] = node_id
                for edge in component:
                    enclosing[edge] = node_id
        return cls(nodes=nodes, node_of_edge=node_of_edge, roots=roots, state=state)

    # ------------------------------------------------------------------
    # Incremental maintenance (the PR 3 tentpole)
    # ------------------------------------------------------------------
    def _ensure_sla_ref(self) -> Dict[int, Set[int]]:
        """Build (once) the reverse sla index: node id -> referencing eids."""
        ref = self._sla_ref
        if ref is None:
            ref = {}
            assert self._sla_sets is not None
            for eid, entry in enumerate(self._sla_sets):
                if entry:
                    for node_id in entry:
                        ref.setdefault(node_id, set()).add(eid)
            self._sla_ref = ref
        return ref

    def sla_referencing(self, node_id: int) -> Set[int]:
        """Eids whose ``sla`` set contains ``node_id`` (read-only view)."""
        return self._ensure_sla_ref().get(node_id, set())

    def _attach(self, child_id: int, parent_id: Optional[int]) -> None:
        """Point ``child.parent`` at ``parent_id``, keeping children lists in sync."""
        node = self.nodes[child_id]
        old = node.parent
        if old == parent_id:
            return
        if old is not None:
            old_node = self.nodes.get(old)
            if old_node is not None and child_id in old_node.children:
                old_node.children.remove(child_id)
        node.parent = parent_id
        if parent_id is not None:
            children = self.nodes[parent_id].children
            if child_id not in children:
                children.append(child_id)

    def _rekey_sla_refs(self, old_id: int, new_id: int, sla_dirty: Set[int]) -> None:
        """Swap ``old_id`` for ``new_id`` in every referencing ``sla`` set."""
        ref = self._ensure_sla_ref()
        refs = ref.pop(old_id, None)
        if not refs:
            return
        assert self._sla_sets is not None
        for eid in refs:
            entry = self._sla_sets[eid]
            if entry is not None:
                entry.discard(old_id)
                entry.add(new_id)
        sla_dirty |= refs
        existing = ref.get(new_id)
        if existing is not None:
            existing |= refs
        else:
            ref[new_id] = refs

    def _rename_node(
        self,
        old_id: int,
        new_id: int,
        touched: Set[int],
        sla_dirty: Set[int],
        forward: Dict[int, Optional[int]],
    ) -> None:
        """Re-key a node (its smallest member edge id changed)."""
        node = self.nodes.pop(old_id)
        node.node_id = new_id
        self.nodes[new_id] = node
        forward[old_id] = new_id
        touched.add(old_id)
        touched.add(new_id)
        if node.parent is not None:
            siblings = self.nodes[node.parent].children
            siblings[siblings.index(old_id)] = new_id
        for child in node.children:
            self.nodes[child].parent = new_id
        node_of_eid = self._node_of_eid
        node_of_edge = self.node_of_edge
        assert node_of_eid is not None
        for eid in node.edge_ids:
            node_of_eid[eid] = new_id
        for edge in node.edges:
            node_of_edge[edge] = new_id
        self._rekey_sla_refs(old_id, new_id, sla_dirty)

    def _merge_nodes(
        self,
        a_id: int,
        b_id: int,
        touched: Set[int],
        sla_dirty: Set[int],
        forward: Dict[int, Optional[int]],
    ) -> int:
        """Fuse two same-level nodes whose components became connected.

        The survivor keeps the smaller id (node ids are "smallest contained
        edge id", and memberships are disjoint, so the invariant is
        preserved).  Children are re-parented onto the survivor; the caller
        reconciles the two parent chains (see :meth:`_zip_chains`).
        """
        if a_id == b_id:
            return a_id
        keep_id, drop_id = (a_id, b_id) if a_id < b_id else (b_id, a_id)
        keep = self.nodes[keep_id]
        drop = self.nodes.pop(drop_id)
        forward[drop_id] = keep_id
        touched.add(keep_id)
        touched.add(drop_id)
        if drop.parent is not None:
            siblings = self.nodes[drop.parent].children
            if drop_id in siblings:
                siblings.remove(drop_id)
        keep.edges |= drop.edges
        keep.edge_ids |= drop.edge_ids
        for child in drop.children:
            self.nodes[child].parent = keep_id
        keep.children.extend(drop.children)
        node_of_eid = self._node_of_eid
        node_of_edge = self.node_of_edge
        assert node_of_eid is not None
        for eid in drop.edge_ids:
            node_of_eid[eid] = keep_id
        for edge in drop.edges:
            node_of_edge[edge] = keep_id
        self._rekey_sla_refs(drop_id, keep_id, sla_dirty)
        return keep_id

    def _zip_chains(
        self,
        child_id: int,
        a_id: Optional[int],
        b_id: Optional[int],
        touched: Set[int],
        sla_dirty: Set[int],
        forward: Dict[int, Optional[int]],
    ) -> None:
        """Merge two ancestor chains that now enclose the same component.

        ``child_id``'s component became connected (at ``child``'s level) to a
        component whose ancestor chain starts at ``b_id`` while its own chain
        starts at ``a_id``; connectivity at a level implies connectivity at
        every lower level, so the two chains must interleave into one.  Nodes
        at equal levels merge; the walk descends strictly in level and
        terminates at a shared ancestor or the roots.
        """
        nodes = self.nodes
        while True:
            if a_id == b_id:
                self._attach(child_id, a_id)
                return
            if a_id is None:
                self._attach(child_id, b_id)
                return
            if b_id is None:
                self._attach(child_id, a_id)
                return
            a, b = nodes[a_id], nodes[b_id]
            if a.k == b.k:
                next_a, next_b = a.parent, b.parent
                merged = self._merge_nodes(a_id, b_id, touched, sla_dirty, forward)
                # The merged node's parent slot is reconciled by the next
                # loop iteration (it zips next_a against next_b).
                self._attach(child_id, merged)
                child_id, a_id, b_id = merged, next_a, next_b
            elif a.k > b.k:
                self._attach(child_id, a_id)
                child_id, a_id = a_id, a.parent
            else:
                self._attach(child_id, b_id)
                child_id, b_id = b_id, b.parent

    def _merge_level_tops(
        self,
        level_tops: List[int],
        touched: Set[int],
        sla_dirty: Set[int],
        forward: Dict[int, Optional[int]],
    ) -> int:
        """Fuse the level-`k` top nodes of newly-connected components into
        one, reconciling their parent chains; returns the survivor's id."""
        target = level_tops[0]
        for other in level_tops[1:]:
            next_a, next_b = self.nodes[target].parent, self.nodes[other].parent
            target = self._merge_nodes(target, other, touched, sla_dirty, forward)
            self._zip_chains(target, next_a, next_b, touched, sla_dirty, forward)
        return target

    def _absorb_higher_tops(
        self,
        target: int,
        higher_tops: List[int],
        touched: Set[int],
        sla_dirty: Set[int],
        forward: Dict[int, Optional[int]],
    ) -> None:
        """Hang higher-level top nodes below ``target`` (their components
        joined ``target``'s), folding each one's old parent chain in."""
        nodes = self.nodes
        for top in higher_tops:
            if top not in nodes:  # pragma: no cover - merged away above
                continue
            old_parent = nodes[top].parent
            if old_parent == target:
                continue
            self._attach(top, target)
            self._zip_chains(
                target, nodes[target].parent, old_parent,
                touched, sla_dirty, forward,
            )

    def _top_at(self, eid: int, level: int) -> int:
        """Topmost ancestor (node id) of ``eid``'s node with ``k >= level``."""
        node_of_eid = self._node_of_eid
        assert node_of_eid is not None
        nodes = self.nodes
        nid = node_of_eid[eid]
        while True:
            parent = nodes[nid].parent
            if parent is None or nodes[parent].k < level:
                return nid
            nid = parent

    def _collect_tops(
        self,
        seed_eid: int,
        level: int,
        new_truss: List[float],
        new_mask: bytearray,
        index: GraphIndex,
    ) -> Set[int]:
        """Node ids of every ``{t >= level}`` component triangle-reachable
        from ``seed_eid``, walking *through* anchored edges (anchors are
        present at every level and act as connectivity conduits).

        A triangle counts iff its two other edges are each anchored or have
        (new) trussness at least ``level``.  Followers of the current patch
        that have not been re-inserted yet (``_PENDING_NODE``) are skipped —
        their own insertion discovers the same triangles later, so the final
        connectivity is complete once the whole batch is processed.
        """
        tri = index.edge_triangles
        node_of_eid = self._node_of_eid
        assert node_of_eid is not None
        tops: Set[int] = set()
        seen_anchors: Set[int] = {seed_eid}
        stack: List[int] = [seed_eid]
        while stack:
            current = stack.pop()
            for a, b, _w in tri[current]:
                if new_truss[a] < level or new_truss[b] < level:
                    continue
                for partner in (a, b):
                    if new_mask[partner]:
                        if partner not in seen_anchors:
                            seen_anchors.add(partner)
                            stack.append(partner)
                    else:
                        nid = node_of_eid[partner]
                        if nid != _PENDING_NODE:
                            tops.add(self._top_at(partner, level))
        return tops

    def _resolve_live(
        self, nid: Optional[int], forward: Dict[int, Optional[int]]
    ) -> Optional[int]:
        """Follow the rename/merge/delete forwarding chain to a live node id."""
        while nid is not None and nid not in self.nodes:
            nid = forward[nid]
        return nid

    def _recompute_sla_of(
        self,
        eid: int,
        new_truss: List[float],
        new_mask: bytearray,
        index: GraphIndex,
        sla_dirty: Set[int],
    ) -> None:
        """Recompute ``sla(eid)`` from scratch and sync the reverse index."""
        assert self._sla_sets is not None
        node_of_eid = self._node_of_eid
        assert node_of_eid is not None
        threshold = new_truss[eid]
        fresh: Set[int] = set()
        for a, b, _w in index.edge_triangles[eid]:
            for neighbour in (a, b):
                if not new_mask[neighbour] and new_truss[neighbour] >= threshold:
                    fresh.add(node_of_eid[neighbour])
        old = self._sla_sets[eid] or set()
        if fresh == old:
            return
        ref = self._ensure_sla_ref()
        for node_id in old - fresh:
            refs = ref.get(node_id)
            if refs is not None:
                refs.discard(eid)
        for node_id in fresh - old:
            ref.setdefault(node_id, set()).add(eid)
        self._sla_sets[eid] = fresh if fresh else None
        sla_dirty.add(eid)

    def apply_commit(self, delta: "CommitDelta", new_state: TrussState) -> TreePatchInfo:
        """Patch the tree **in place** for one incrementally re-peeled anchor.

        ``delta`` is the :class:`~repro.core.engine.CommitDelta` recorded by
        the engine's incremental re-peel (the anchor, its exact followers and
        every edge whose trussness or layer changed); ``new_state`` is the
        state *after* the commit.  Only nodes whose trussness levels were
        touched are modified:

        * the anchor and every follower *depart* their old node (nodes may
          shrink, rename — ids are "smallest member edge id" — or disappear,
          splicing their children onto the parent);
        * followers *arrive* at their new level, merging any ``{t >= k+1}``
          components they now bridge (processed in descending level order so
          higher arrivals are already placed);
        * the anchor's new permanent presence can connect components at any
          level up to the trussness of its triangle partners — those merges
          walk triangle-adjacency *through* anchors (anchors are conduits)
          and reconcile the ancestor chains (:meth:`_zip_chains`);
        * ``sla`` is recomputed only for the edges in triangles of the
          anchor / followers, plus bulk id swaps for renamed or merged nodes
          via the reverse sla index.

        Trussness can only grow under anchoring, so components never split —
        a node's *edge set* may split across two levels (followers move up),
        but the remaining members always stay one node.  The returned
        :class:`TreePatchInfo` carries the exact invalidation the reuse rule
        (Algorithm 5) would compute from a full before/after tree diff; the
        equivalence is asserted by the test-suite on randomized graphs.
        """
        if self._node_of_eid is None or self._sla_sets is None:
            raise InvalidParameterError(
                "apply_commit requires a kernel-built tree (TrussComponentTree.build)"
            )
        index, new_truss, _new_layer, new_mask = new_state.kernel_views()
        nodes = self.nodes
        node_of_eid = self._node_of_eid
        node_of_edge = self.node_of_edge
        edge_of = index.edge_of
        stable_ids = index.stable_ids
        anchor_eid = delta.anchor_eid
        followers = delta.follower_eids

        touched: Set[int] = set()
        sla_dirty: Set[int] = set()
        forward: Dict[int, Optional[int]] = {}
        self._ensure_sla_ref()

        # -- captures (everything the reuse decision reads from the OLD tree)
        old_node_ids = set(nodes)
        old_sla_anchor = set(self._sla_sets[anchor_eid] or ())
        changed_nodes: Set[int] = set()
        for eid in delta.changed_eids:
            nid = node_of_eid[eid]
            if nid >= 0:
                changed_nodes.add(nid)

        # -- phase 1: departures (the anchor for good, followers temporarily)
        departures: Dict[int, List[int]] = {}
        departures.setdefault(node_of_eid[anchor_eid], []).append(anchor_eid)
        departed_from: Dict[int, int] = {}
        for f in followers:
            nid = node_of_eid[f]
            departed_from[f] = nid
            departures.setdefault(nid, []).append(f)
        for nid, leaving in departures.items():
            node = nodes[nid]
            touched.add(nid)
            remaining = node.edge_ids - frozenset(leaving)
            for eid in leaving:
                node_of_edge.pop(edge_of[eid], None)
                node_of_eid[eid] = _PENDING_NODE
            if not remaining:
                parent_id = node.parent
                del nodes[nid]
                forward[nid] = parent_id
                if parent_id is not None:
                    siblings = nodes[parent_id].children
                    siblings.remove(nid)
                    siblings.extend(node.children)
                for child in node.children:
                    nodes[child].parent = parent_id
                refs = self._sla_ref.pop(nid, None)  # type: ignore[union-attr]
                if refs:
                    for eid in refs:
                        entry = self._sla_sets[eid]
                        if entry is not None:
                            entry.discard(nid)
                    sla_dirty |= refs
            else:
                node.edge_ids = remaining
                node.edges = node.edges - frozenset(edge_of[eid] for eid in leaving)
                new_id = stable_ids[min(remaining)]
                if new_id != nid:
                    self._rename_node(nid, new_id, touched, sla_dirty, forward)
        node_of_eid[anchor_eid] = ANCHOR_NODE

        # -- phase 2: follower arrivals, descending new trussness level
        arrivals_by_level: Dict[int, List[int]] = {}
        for f in followers:
            arrivals_by_level.setdefault(int(new_truss[f]), []).append(f)
        for level in sorted(arrivals_by_level, reverse=True):
            for f in sorted(arrivals_by_level[level]):
                tops = self._collect_tops(f, level, new_truss, new_mask, index)
                level_tops = sorted(t for t in tops if nodes[t].k == level)
                higher_tops = sorted(t for t in tops if nodes[t].k > level)
                if level_tops:
                    target = self._merge_level_tops(
                        level_tops, touched, sla_dirty, forward
                    )
                    node = nodes[target]
                    touched.add(target)
                    node.edge_ids |= frozenset((f,))
                    node.edges |= frozenset((edge_of[f],))
                    node_of_eid[f] = target
                    node_of_edge[edge_of[f]] = target
                    new_id = stable_ids[f]
                    if new_id < target:
                        self._rename_node(target, new_id, touched, sla_dirty, forward)
                        target = new_id
                else:
                    # Parent base: the surviving enclosure of f's old node.
                    # Resolve BEFORE inserting the new node (the new id may
                    # coincide with the departed node's id), and walk up past
                    # any node at the arrival level or above (id reuse by a
                    # sibling follower that already re-arrived).
                    base = self._resolve_live(departed_from[f], forward)
                    while base is not None and nodes[base].k >= level:
                        base = nodes[base].parent
                    target = stable_ids[f]
                    nodes[target] = TreeNode(
                        node_id=target,
                        k=level,
                        edges=frozenset((edge_of[f],)),
                        edge_ids=frozenset((f,)),
                    )
                    touched.add(target)
                    node_of_eid[f] = target
                    node_of_edge[edge_of[f]] = target
                    self._zip_chains(target, None, base, touched, sla_dirty, forward)
                self._absorb_higher_tops(target, higher_tops, touched, sla_dirty, forward)

        # -- phase 3: connections closed by the anchor's permanent presence.
        # The anchor may bridge components at every level up to the trussness
        # of its triangle partners, including through chains of other anchors
        # (an "anchor web").  Gather the candidate levels from the triangles
        # of the whole reachable web, then merge the reachable components per
        # level in descending order (higher merges subsume lower ones).
        tri = index.edge_triangles
        web: Set[int] = {anchor_eid}
        stack = [anchor_eid]
        candidate_levels: Set[int] = set()
        while stack:
            current = stack.pop()
            for a, b, _w in tri[current]:
                level = min(new_truss[a], new_truss[b])
                if level != math.inf:
                    candidate_levels.add(int(level))
                for partner in (a, b):
                    if new_mask[partner] and partner not in web:
                        web.add(partner)
                        stack.append(partner)
        for level in sorted(candidate_levels, reverse=True):
            tops = sorted(self._collect_tops(anchor_eid, level, new_truss, new_mask, index))
            if len(tops) < 2:
                continue
            level_tops = [t for t in tops if nodes[t].k == level]
            higher_tops = [t for t in tops if nodes[t].k > level]
            if level_tops:
                target = self._merge_level_tops(level_tops, touched, sla_dirty, forward)
                self._absorb_higher_tops(target, higher_tops, touched, sla_dirty, forward)
            else:
                base = higher_tops[0]
                for other in higher_tops[1:]:
                    if base not in nodes or other not in nodes:  # pragma: no cover
                        continue
                    self._zip_chains(
                        other, nodes[other].parent, nodes[base].parent,
                        touched, sla_dirty, forward,
                    )

        # -- phase 4: sla recomputation for the locally affected edges
        local: Set[int] = set(followers)
        for seed in (anchor_eid, *followers):
            for a, b, _w in tri[seed]:
                local.add(a)
                local.add(b)
        for eid in sorted(local):
            if not new_mask[eid]:
                self._recompute_sla_of(eid, new_truss, new_mask, index, sla_dirty)
        if old_sla_anchor:
            ref = self._ensure_sla_ref()
            for node_id in old_sla_anchor:
                refs = ref.get(node_id)
                if refs is not None:
                    refs.discard(anchor_eid)
        self._sla_sets[anchor_eid] = None

        # -- phase 5: derived structures
        self.roots = [nid for nid, node in nodes.items() if node.parent is None]
        self.state = new_state
        self._signatures_cache = None

        for eid in delta.changed_eids:
            nid = node_of_eid[eid]
            if nid >= 0:
                changed_nodes.add(nid)
        # Renames and merges can route through a transient id that exists in
        # neither the old nor the new tree; no cache entry can reference it,
        # and the before/after diff never reports it — drop those so the
        # patch-assembled decision stays byte-identical to the diff.
        invalid_node_ids = {
            nid
            for nid in touched | changed_nodes | old_sla_anchor
            if nid in nodes or nid in old_node_ids
        }
        ref = self._ensure_sla_ref()
        dirty = set(delta.changed_eids)
        dirty |= sla_dirty
        for node_id in invalid_node_ids:
            refs = ref.get(node_id)
            if refs:
                dirty |= refs
        return TreePatchInfo(
            invalid_node_ids=invalid_node_ids,
            dirty_candidate_eids=dirty,
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def node_of(self, edge: Edge) -> TreeNode:
        """The tree node containing ``edge`` (``T[e]`` in the paper)."""
        edge = normalize_edge(*edge)
        try:
            return self.nodes[self.node_of_edge[edge]]
        except KeyError as exc:
            raise InvalidEdgeError(edge, f"edge {edge!r} is not assigned to any tree node") from exc

    def subtree_node_ids(self, node_id: int) -> List[int]:
        """Ids of the subtree rooted at ``node_id`` (pre-order)."""
        if node_id not in self.nodes:
            raise InvalidParameterError(f"unknown tree node id {node_id}")
        order: List[int] = []
        stack = [node_id]
        while stack:
            current = stack.pop()
            order.append(current)
            stack.extend(self.nodes[current].children)
        return order

    def subtree_edges(self, node_id: int) -> Set[Edge]:
        """All edges in the subtree rooted at ``node_id``.

        By construction these induce a (TN.K)-truss component of the graph.
        """
        edges: Set[Edge] = set()
        for nid in self.subtree_node_ids(node_id):
            edges |= self.nodes[nid].edges
        return edges

    def sla(self, edge: Edge) -> Set[int]:
        """Subtree adjacency node ids of ``edge`` (Table II).

        ``id ∈ sla(e)`` iff some neighbour-edge ``e'`` of ``e`` has
        ``t(e') >= t(e)`` and lives in the node with that id.  For trees
        built by :meth:`build` this is a precomputed O(1) lookup; treat the
        returned set as read-only.
        """
        edge = self.state.graph.require_edge(edge)
        if self._sla_sets is not None:
            entry = self._sla_sets[self.state.index.eid_of[edge]]
            return entry if entry is not None else set()
        t_edge = self.state.trussness(edge)
        result: Set[int] = set()
        for e1, e2, _w in self.state.triangle_list(edge):
            for neighbour in (e1, e2):
                if self.state.is_anchor(neighbour):
                    continue
                if self.state.trussness(neighbour) >= t_edge:
                    result.add(self.node_of_edge[neighbour])
        return result

    def sla_map(self, edges: Optional[Iterable[Edge]] = None) -> Dict[Edge, Set[int]]:
        """``sla(e)`` for every requested edge (default: every non-anchored edge)."""
        if edges is None:
            edges = list(self.state.non_anchor_edges())
        return {edge: set(self.sla(edge)) for edge in edges}

    def node_signature(self, node_id: int) -> Tuple[FrozenSet[Edge], Tuple[Tuple[Edge, float, float], ...]]:
        """A comparable signature of a node: its edge set plus (t, l) of each edge.

        Two trees expose the same signature for a node id exactly when the
        node's edge membership, trussness and peeling layers are all
        unchanged — the precondition under which cached follower results for
        that node stay valid (Lemma 5 plus the conservative extension
        described in DESIGN.md §3.3).
        """
        node = self.nodes[node_id]
        # Node edges are never anchored, so the decomposition dicts can be
        # read directly instead of going through the (inf-aware) state API.
        trussness = self.state.decomposition.trussness
        layer = self.state.decomposition.layer
        detail = tuple(
            sorted((edge, float(trussness[edge]), float(layer[edge])) for edge in node.edges)
        )
        return node.edges, detail

    def signatures(self) -> Dict[int, Tuple[FrozenSet[Edge], Tuple[Tuple[Edge, float, float], ...]]]:
        """Signatures of every node, keyed by node id (computed once; the
        tree is immutable after construction)."""
        if self._signatures_cache is None:
            self._signatures_cache = {
                node_id: self.node_signature(node_id) for node_id in self.nodes
            }
        return self._signatures_cache

    @property
    def node_of_eid(self) -> Optional[List[int]]:
        """Dense eid -> node id list (``-1`` for anchored edges), or ``None``
        for reference-built trees.  Treat as read-only."""
        return self._node_of_eid

    @property
    def sla_sets(self) -> Optional[List[Optional[Set[int]]]]:
        """Precomputed per-eid ``sla`` sets (``None`` entries for edges in no
        triangle), or ``None`` for reference-built trees.  Treat as
        read-only; :meth:`sla` is the per-edge public view."""
        return self._sla_sets

    # ------------------------------------------------------------------
    # Introspection helpers (used by tests and the reuse statistics)
    # ------------------------------------------------------------------
    def depth(self) -> int:
        """Length of the longest root-to-leaf path (number of nodes)."""
        best = 0
        for root in self.roots:
            stack = [(root, 1)]
            while stack:
                node_id, depth = stack.pop()
                best = max(best, depth)
                for child in self.nodes[node_id].children:
                    stack.append((child, depth + 1))
        return best

    def __len__(self) -> int:
        return len(self.nodes)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"TrussComponentTree(nodes={len(self.nodes)}, roots={len(self.roots)})"
