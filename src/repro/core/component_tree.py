"""Truss component tree (Section III-C, Algorithm 4 of the paper).

The tree organises every non-anchored edge of the graph into nodes:

* all edges of a node share the same trussness ``TN.K``;
* the edges in the subtree rooted at a node induce a (TN.K)-truss component
  (a maximal k-truss whose edges are pairwise triangle-connected);
* the node id ``TN.I`` is the smallest edge id contained in the node, which
  makes ids stable across rebuilds as long as the node's edge set does not
  change.

On top of the tree the *subtree adjacency* ``sla(e)`` is defined: the ids of
the nodes that contain a neighbour-edge of ``e`` with trussness at least
``t(e)``.  Lemma 4 states that the followers of an anchored edge are
contained in the union of its ``sla`` nodes, which is what makes per-node
caching of follower sets (GAS, Algorithm 6) possible.

Construction runs in the integer domain of the shared
:class:`~repro.graph.index.GraphIndex`: per trussness level, an integer
union-find over the precomputed triangle triples yields the components, and
one additional pass over the triples precomputes ``sla`` for *every* edge at
once (the GAS loop queries ``sla`` for each candidate in each round).  The
seed implementation is preserved as :meth:`TrussComponentTree.build_reference`
for the equivalence tests and the before/after benchmark.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.graph.graph import Edge, Graph, normalize_edge
from repro.graph.index import GraphIndex
from repro.graph.triangles import triangle_connected_components_reference
from repro.truss.state import TrussState
from repro.utils.errors import InvalidEdgeError, InvalidParameterError


@dataclass(slots=True)
class TreeNode:
    """One node of the truss component tree.

    Attributes map one-to-one onto the paper's notation (Table II):
    ``node_id`` is ``TN.I``, ``k`` is ``TN.K``, ``edges`` is ``TN.E``,
    ``parent`` is ``TN.P`` (as a node id) and ``children`` is ``TN.C``.
    ``edge_ids`` carries the same edge set as dense kernel ids (empty for
    trees built by :meth:`TrussComponentTree.build_reference`).
    """

    node_id: int
    k: int
    edges: FrozenSet[Edge]
    parent: Optional[int] = None
    children: List[int] = field(default_factory=list)
    edge_ids: FrozenSet[int] = frozenset()

    def __len__(self) -> int:
        return len(self.edges)


class TrussComponentTree:
    """The truss component tree of a :class:`TrussState`."""

    def __init__(
        self,
        nodes: Dict[int, TreeNode],
        node_of_edge: Dict[Edge, int],
        roots: List[int],
        state: TrussState,
        sla_sets: Optional[List[Optional[Set[int]]]] = None,
        node_of_eid: Optional[List[int]] = None,
    ) -> None:
        self.nodes = nodes
        self.node_of_edge = node_of_edge
        self.roots = roots
        self.state = state
        # Per-dense-edge-id precomputed sla sets (None for reference trees,
        # which fall back to the per-edge computation).
        self._sla_sets = sla_sets
        # Dense eid -> node id (-1 for anchors), kernel-built trees only.
        self._node_of_eid = node_of_eid
        self._signatures_cache: Optional[
            Dict[int, Tuple[FrozenSet[Edge], Tuple[Tuple[Edge, float, float], ...]]]
        ] = None

    # ------------------------------------------------------------------
    # Construction (Algorithm 4)
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, state: TrussState) -> "TrussComponentTree":
        """Build the tree bottom-up over increasing trussness values.

        The construction is equivalent to the recursive BuildTree of the
        paper (one node per triangle-connected component of trussness-k
        edges, parent = enclosing component at the previous trussness value)
        but runs a *single* union-find over the triangle triples, processing
        trussness levels in decreasing order: a triangle becomes active at
        the minimum trussness of its three edges, so each triangle is
        unioned exactly once instead of once per level.  Parent links are
        recovered by keeping, per component, the list of nodes that have not
        been claimed by an enclosing node yet; the node created for a
        component claims them as children.
        """
        index, trussness_of, _layer_of, anchor_mask = state.kernel_views()
        m = index.num_edges
        edge_of = index.edge_of
        stable_ids = index.stable_ids

        # Edges grouped by trussness; triangles grouped by the level at which
        # they become active (min trussness; all-anchor triangles are active
        # everywhere).  Both int keys; anchors hold inf in trussness_of.
        edges_by_level: Dict[int, List[int]] = {}
        for eid in range(m):
            t = trussness_of[eid]
            if t != math.inf:
                edges_by_level.setdefault(t, []).append(eid)
        tris_by_level: Dict[float, List[Tuple[int, int, int]]] = {}
        for triple in index.triangles:
            e1, e2, e3 = triple
            level = min(trussness_of[e1], trussness_of[e2], trussness_of[e3])
            tris_by_level.setdefault(level, []).append(triple)

        parent = list(range(m))

        def find(e: int) -> int:
            root = e
            while parent[root] != root:
                root = parent[root]
            while parent[e] != root:
                parent[e], e = root, parent[e]
            return root

        # Per union-find root: the nodes inside the component that still have
        # no parent (they will be claimed by the next enclosing node).
        orphans: Dict[int, List[int]] = {}

        def union(a: int, b: int) -> None:
            ra, rb = find(a), find(b)
            if ra == rb:
                return
            parent[rb] = ra
            merged = orphans.pop(rb, None)
            if merged:
                existing = orphans.get(ra)
                if existing:
                    existing.extend(merged)
                else:
                    orphans[ra] = merged

        # Triangles between three anchored edges connect components at every
        # level, so they are activated before the deepest level.
        for e1, e2, e3 in tris_by_level.pop(math.inf, ()):
            union(e1, e2)
            union(e1, e3)

        nodes: Dict[int, TreeNode] = {}
        node_of_edge: Dict[Edge, int] = {}

        for k in sorted(edges_by_level, reverse=True):
            for e1, e2, e3 in tris_by_level.get(k, ()):
                union(e1, e2)
                union(e1, e3)

            components: Dict[int, List[int]] = {}
            for eid in edges_by_level[k]:
                components.setdefault(find(eid), []).append(eid)

            edge_lookup = edge_of.__getitem__
            for root, level_ids in components.items():
                # level_ids is ascending (edges_by_level preserves eid order),
                # so the smallest public edge id is the first entry's.
                node_id = stable_ids[level_ids[0]]
                level_edges = frozenset(map(edge_lookup, level_ids))
                node = TreeNode(
                    node_id=node_id,
                    k=k,
                    edges=level_edges,
                    edge_ids=frozenset(level_ids),
                )
                nodes[node_id] = node
                unclaimed = orphans.get(root)
                if unclaimed:
                    for child_id in unclaimed:
                        nodes[child_id].parent = node_id
                    node.children.extend(unclaimed)
                    unclaimed.clear()
                    unclaimed.append(node_id)
                else:
                    orphans[root] = [node_id]
                for eid in level_ids:
                    node_of_edge[edge_of[eid]] = node_id

        # Nodes never claimed by an enclosing component are the tree roots.
        roots = [node_id for unclaimed in orphans.values() for node_id in unclaimed]

        node_of_eid = [-1] * m
        for node in nodes.values():
            nid = node.node_id
            for eid in node.edge_ids:
                node_of_eid[eid] = nid

        sla_sets = cls._precompute_sla(index, trussness_of, anchor_mask, node_of_eid)
        return cls(
            nodes=nodes,
            node_of_edge=node_of_edge,
            roots=roots,
            state=state,
            sla_sets=sla_sets,
            node_of_eid=node_of_eid,
        )

    @staticmethod
    def _precompute_sla(
        index: GraphIndex,
        trussness_of: List[float],
        anchor_mask: bytearray,
        node_of_eid: List[int],
    ) -> List[Optional[Set[int]]]:
        """One pass over the triangle triples computing ``sla`` for all edges."""
        m = index.num_edges
        # Lazily allocated: edges outside any triangle (the majority on
        # sparse graphs) keep a shared None slot instead of an empty set.
        sla_sets: List[Optional[Set[int]]] = [None] * m

        def add(target: int, node_id: int) -> None:
            entry = sla_sets[target]
            if entry is None:
                sla_sets[target] = {node_id}
            else:
                entry.add(node_id)

        for e1, e2, e3 in index.triangles:
            t1, t2, t3 = trussness_of[e1], trussness_of[e2], trussness_of[e3]
            a1, a2, a3 = anchor_mask[e1], anchor_mask[e2], anchor_mask[e3]
            if not a1:
                n1 = node_of_eid[e1]
                if not a2 and t1 >= t2:
                    add(e2, n1)
                if not a3 and t1 >= t3:
                    add(e3, n1)
            if not a2:
                n2 = node_of_eid[e2]
                if not a1 and t2 >= t1:
                    add(e1, n2)
                if not a3 and t2 >= t3:
                    add(e3, n2)
            if not a3:
                n3 = node_of_eid[e3]
                if not a1 and t3 >= t1:
                    add(e1, n3)
                if not a2 and t3 >= t2:
                    add(e2, n3)
        return sla_sets

    @classmethod
    def build_reference(cls, state: TrussState) -> "TrussComponentTree":
        """Seed (tuple-domain) implementation of Algorithm 4.

        Kept verbatim — including the per-level calls to the reference
        triangle connectivity — as ground truth for the kernel equivalence
        tests and as the "before" bar of ``benchmarks/bench_kernel.py``.
        Trees built this way compute ``sla`` per edge on demand.
        """
        graph = state.graph
        trussness = state.decomposition.trussness
        anchors = state.anchors
        eid_of = state.index.eid_of  # only used to fill TreeNode.edge_ids

        nodes: Dict[int, TreeNode] = {}
        node_of_edge: Dict[Edge, int] = {}
        roots: List[int] = []
        enclosing: Dict[Edge, Optional[int]] = {e: None for e in graph.edges()}

        levels = sorted(set(trussness.values()))
        for k in levels:
            member_edges = [e for e, t in trussness.items() if t >= k]
            member_edges.extend(anchors)
            if not member_edges:
                continue
            components = triangle_connected_components_reference(graph, member_edges)
            for component in components:
                level_edges = frozenset(
                    e for e in component if e not in anchors and trussness[e] == k
                )
                if not level_edges:
                    continue
                node_id = min(graph.edge_id(e) for e in level_edges)
                parent_id = enclosing[next(iter(level_edges))]
                node = TreeNode(
                    node_id=node_id,
                    k=k,
                    edges=level_edges,
                    parent=parent_id,
                    edge_ids=frozenset(eid_of[e] for e in level_edges),
                )
                nodes[node_id] = node
                if parent_id is None:
                    roots.append(node_id)
                else:
                    nodes[parent_id].children.append(node_id)
                for edge in level_edges:
                    node_of_edge[edge] = node_id
                for edge in component:
                    enclosing[edge] = node_id
        return cls(nodes=nodes, node_of_edge=node_of_edge, roots=roots, state=state)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def node_of(self, edge: Edge) -> TreeNode:
        """The tree node containing ``edge`` (``T[e]`` in the paper)."""
        edge = normalize_edge(*edge)
        try:
            return self.nodes[self.node_of_edge[edge]]
        except KeyError as exc:
            raise InvalidEdgeError(edge, f"edge {edge!r} is not assigned to any tree node") from exc

    def subtree_node_ids(self, node_id: int) -> List[int]:
        """Ids of the subtree rooted at ``node_id`` (pre-order)."""
        if node_id not in self.nodes:
            raise InvalidParameterError(f"unknown tree node id {node_id}")
        order: List[int] = []
        stack = [node_id]
        while stack:
            current = stack.pop()
            order.append(current)
            stack.extend(self.nodes[current].children)
        return order

    def subtree_edges(self, node_id: int) -> Set[Edge]:
        """All edges in the subtree rooted at ``node_id``.

        By construction these induce a (TN.K)-truss component of the graph.
        """
        edges: Set[Edge] = set()
        for nid in self.subtree_node_ids(node_id):
            edges |= self.nodes[nid].edges
        return edges

    def sla(self, edge: Edge) -> Set[int]:
        """Subtree adjacency node ids of ``edge`` (Table II).

        ``id ∈ sla(e)`` iff some neighbour-edge ``e'`` of ``e`` has
        ``t(e') >= t(e)`` and lives in the node with that id.  For trees
        built by :meth:`build` this is a precomputed O(1) lookup; treat the
        returned set as read-only.
        """
        edge = self.state.graph.require_edge(edge)
        if self._sla_sets is not None:
            entry = self._sla_sets[self.state.index.eid_of[edge]]
            return entry if entry is not None else set()
        t_edge = self.state.trussness(edge)
        result: Set[int] = set()
        for e1, e2, _w in self.state.triangle_list(edge):
            for neighbour in (e1, e2):
                if self.state.is_anchor(neighbour):
                    continue
                if self.state.trussness(neighbour) >= t_edge:
                    result.add(self.node_of_edge[neighbour])
        return result

    def sla_map(self, edges: Optional[Iterable[Edge]] = None) -> Dict[Edge, Set[int]]:
        """``sla(e)`` for every requested edge (default: every non-anchored edge)."""
        if edges is None:
            edges = list(self.state.non_anchor_edges())
        return {edge: set(self.sla(edge)) for edge in edges}

    def node_signature(self, node_id: int) -> Tuple[FrozenSet[Edge], Tuple[Tuple[Edge, float, float], ...]]:
        """A comparable signature of a node: its edge set plus (t, l) of each edge.

        Two trees expose the same signature for a node id exactly when the
        node's edge membership, trussness and peeling layers are all
        unchanged — the precondition under which cached follower results for
        that node stay valid (Lemma 5 plus the conservative extension
        described in DESIGN.md §3.3).
        """
        node = self.nodes[node_id]
        # Node edges are never anchored, so the decomposition dicts can be
        # read directly instead of going through the (inf-aware) state API.
        trussness = self.state.decomposition.trussness
        layer = self.state.decomposition.layer
        detail = tuple(
            sorted((edge, float(trussness[edge]), float(layer[edge])) for edge in node.edges)
        )
        return node.edges, detail

    def signatures(self) -> Dict[int, Tuple[FrozenSet[Edge], Tuple[Tuple[Edge, float, float], ...]]]:
        """Signatures of every node, keyed by node id (computed once; the
        tree is immutable after construction)."""
        if self._signatures_cache is None:
            self._signatures_cache = {
                node_id: self.node_signature(node_id) for node_id in self.nodes
            }
        return self._signatures_cache

    @property
    def node_of_eid(self) -> Optional[List[int]]:
        """Dense eid -> node id list (``-1`` for anchored edges), or ``None``
        for reference-built trees.  Treat as read-only."""
        return self._node_of_eid

    @property
    def sla_sets(self) -> Optional[List[Optional[Set[int]]]]:
        """Precomputed per-eid ``sla`` sets (``None`` entries for edges in no
        triangle), or ``None`` for reference-built trees.  Treat as
        read-only; :meth:`sla` is the per-edge public view."""
        return self._sla_sets

    # ------------------------------------------------------------------
    # Introspection helpers (used by tests and the reuse statistics)
    # ------------------------------------------------------------------
    def depth(self) -> int:
        """Length of the longest root-to-leaf path (number of nodes)."""
        best = 0
        for root in self.roots:
            stack = [(root, 1)]
            while stack:
                node_id, depth = stack.pop()
                best = max(best, depth)
                for child in self.nodes[node_id].children:
                    stack.append((child, depth + 1))
        return best

    def __len__(self) -> int:
        return len(self.nodes)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"TrussComponentTree(nodes={len(self.nodes)}, roots={len(self.roots)})"
