"""Seed (tuple-domain) follower implementations, kept verbatim.

These are the pre-kernel implementations of Lemma 2 candidate collection,
the per-level peeling method and the paper's Algorithm 3, operating on edge
tuples and per-call triangle intersections
(:meth:`repro.truss.state.TrussState._triangles_reference`).  They exist for
two reasons:

* the equivalence tests in ``tests/test_graph_index.py`` assert that the
  integer-domain rewrites in :mod:`repro.core.followers` return exactly the
  same follower sets, and
* ``benchmarks/bench_kernel.py`` uses them as the honest "before" bar.

Do not optimise this module; it is the yardstick.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Set, Tuple

from repro.graph.graph import Edge
from repro.truss.state import TrussState
from repro.utils.errors import InvalidParameterError


def _initial_candidates_reference(
    state: TrussState, anchor: Edge, strict: bool
) -> Set[Edge]:
    """Neighbour-edges of the anchor satisfying Lemma 2 condition (i)."""
    t_anchor = state.trussness(anchor)
    l_anchor = state.layer(anchor)
    result: Set[Edge] = set()
    for e1, e2, _w in state._triangles_reference(anchor):
        for edge in (e1, e2):
            if state.is_anchor(edge):
                continue
            t_edge = state.trussness(edge)
            if t_edge > t_anchor:
                result.add(edge)
            elif t_edge == t_anchor:
                l_edge = state.layer(edge)
                if l_edge > l_anchor or (not strict and l_edge == l_anchor):
                    result.add(edge)
    return result


def _expand_candidates_reference(state: TrussState, seeds: Set[Edge]) -> Set[Edge]:
    """Upward-route reachable closure of ``seeds`` (Definition 7)."""
    candidates: Set[Edge] = set(seeds)
    stack: List[Edge] = list(seeds)
    while stack:
        edge = stack.pop()
        k = state.trussness(edge)
        l_edge = state.layer(edge)
        for e1, e2, _w in state._triangles_reference(edge):
            for nxt in (e1, e2):
                if nxt in candidates or state.is_anchor(nxt):
                    continue
                if state.trussness(nxt) == k and state.layer(nxt) >= l_edge:
                    candidates.add(nxt)
                    stack.append(nxt)
    return candidates


def followers_candidate_peel_reference(
    state: TrussState,
    anchor: Edge,
    candidate_filter: Optional[Set[Edge]] = None,
) -> Set[Edge]:
    """Seed implementation of the "peel" follower method."""
    anchor = state.graph.require_edge(anchor)
    if state.is_anchor(anchor):
        raise InvalidParameterError(f"edge {anchor!r} is already anchored")

    seeds = _initial_candidates_reference(state, anchor, strict=False)
    if candidate_filter is not None:
        seeds &= candidate_filter
    candidates = _expand_candidates_reference(state, seeds)
    if candidate_filter is not None:
        candidates &= candidate_filter
    candidates.discard(anchor)

    by_level: Dict[int, Set[Edge]] = {}
    for edge in candidates:
        by_level.setdefault(int(state.trussness(edge)), set()).add(edge)

    followers: Set[Edge] = set()
    for k, level_candidates in by_level.items():
        followers |= _peel_level_reference(state, anchor, k, level_candidates)
    return followers


def _peel_level_reference(
    state: TrussState, anchor: Edge, k: int, members: Set[Edge]
) -> Set[Edge]:
    """Greatest fixed point of the level-k support condition over ``members``."""

    def is_solid(edge: Edge) -> bool:
        if edge == anchor or state.is_anchor(edge):
            return True
        return state.trussness(edge) >= k + 1

    alive: Set[Edge] = set(members)
    support: Dict[Edge, int] = {}
    for edge in alive:
        count = 0
        for e1, e2, _w in state._triangles_reference(edge):
            if (is_solid(e1) or e1 in alive) and (is_solid(e2) or e2 in alive):
                count += 1
        support[edge] = count

    threshold = k - 1
    queue: List[Edge] = [edge for edge in alive if support[edge] < threshold]
    removed: Set[Edge] = set(queue)
    while queue:
        edge = queue.pop()
        alive.discard(edge)
        for e1, e2, _w in state._triangles_reference(edge):
            for member, partner in ((e1, e2), (e2, e1)):
                if member in alive and (is_solid(partner) or partner in alive):
                    support[member] -= 1
                    if support[member] < threshold and member not in removed:
                        removed.add(member)
                        queue.append(member)
    return alive


_UNCHECKED = 0
_SURVIVED = 1
_ELIMINATED = 2


def followers_support_check_reference(
    state: TrussState,
    anchor: Edge,
    candidate_filter: Optional[Set[Edge]] = None,
) -> Set[Edge]:
    """Seed implementation of the paper's Algorithm 3 (GetFollowers)."""
    anchor = state.graph.require_edge(anchor)
    if state.is_anchor(anchor):
        raise InvalidParameterError(f"edge {anchor!r} is already anchored")

    graph = state.graph
    initial = _initial_candidates_reference(state, anchor, strict=True)
    if candidate_filter is not None:
        initial &= candidate_filter

    heaps: Dict[int, List[Tuple[int, int, Edge]]] = {}
    pushed: Set[Edge] = set()
    for edge in initial:
        level = int(state.trussness(edge))
        heaps.setdefault(level, [])
        heapq.heappush(heaps[level], (int(state.layer(edge)), graph.edge_id(edge), edge))
        pushed.add(edge)

    followers: Set[Edge] = set()

    for level in sorted(heaps):
        heap = heaps[level]
        status: Dict[Edge, int] = {}
        survived: Set[Edge] = set()

        def effectiveness(edge: Edge, other: Edge) -> bool:
            if other == anchor or state.is_anchor(other):
                return True
            if status.get(other) == _ELIMINATED:
                return False
            t_other = state.trussness(other)
            if t_other < level:
                return False
            if status.get(other) == _SURVIVED:
                return True
            return state.precedes(edge, other)

        def effective_triangles(edge: Edge) -> int:
            count = 0
            for e1, e2, _w in state._triangles_reference(edge):
                if effectiveness(edge, e1) and effectiveness(edge, e2):
                    count += 1
            return count

        def retract(edge: Edge) -> None:
            stack = [edge]
            while stack:
                lost = stack.pop()
                for e1, e2, _w in state._triangles_reference(lost):
                    for neighbour in (e1, e2):
                        if neighbour in survived and status.get(neighbour) == _SURVIVED:
                            if effective_triangles(neighbour) < level - 1:
                                status[neighbour] = _ELIMINATED
                                survived.discard(neighbour)
                                stack.append(neighbour)

        while heap:
            _layer, _edge_id, edge = heapq.heappop(heap)
            if status.get(edge) is not None:
                continue
            if effective_triangles(edge) >= level - 1:
                status[edge] = _SURVIVED
                survived.add(edge)
                edge_layer = state.layer(edge)
                for e1, e2, _w in state._triangles_reference(edge):
                    for neighbour in (e1, e2):
                        if neighbour in pushed or state.is_anchor(neighbour):
                            continue
                        if candidate_filter is not None and neighbour not in candidate_filter:
                            continue
                        if (
                            state.trussness(neighbour) == level
                            and state.layer(neighbour) >= edge_layer
                        ):
                            heapq.heappush(
                                heap,
                                (int(state.layer(neighbour)), graph.edge_id(neighbour), neighbour),
                            )
                            pushed.add(neighbour)
            else:
                status[edge] = _ELIMINATED
                retract(edge)

        followers |= survived

    followers.discard(anchor)
    return followers
