"""Follower-reuse bookkeeping between greedy rounds (Algorithm 5 / Lemma 5).

After an anchor is committed, most of the per-edge follower sets computed in
the previous round are still valid: trussness changes are confined to the
anchor's followers, and follower sets are cached *per tree node*
(``F[e][id]``).  This module decides which cached entries survive.

The invalidation rule is the paper's Algorithm 5 extended conservatively
(DESIGN.md §3.3): a cached entry ``F[e][id]`` is kept only when

* the node ``id`` exists before and after the anchoring with an identical
  edge set and identical per-edge trussness / layer values,
* ``id`` is not in ``sla(x)`` of the committed anchor ``x`` (the anchor's
  infinite support may enable new followers in any adjacent node, even one
  whose own edges did not move), and
* the trussness and layer of ``e`` itself did not change.

The conservative rule can only invalidate *more* entries than the paper's
rule, so GAS remains exactly equivalent to BASE+; the reuse-rate experiment
(Fig. 10) shows that the overwhelming majority of entries is still reused.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Optional, Set

from repro.core.component_tree import TrussComponentTree
from repro.graph.graph import Edge


@dataclass
class ReuseDecision:
    """Outcome of the invalidation analysis for one committed anchor."""

    #: Node ids whose cached follower entries must be recomputed.
    invalid_node_ids: Set[int] = field(default_factory=set)
    #: Edges whose whole cache entry must be dropped (their own t/l changed).
    invalid_edges: Set[Edge] = field(default_factory=set)

    def is_node_valid(self, node_id: int) -> bool:
        return node_id not in self.invalid_node_ids


@dataclass
class ReuseInvalidation:
    """A :class:`ReuseDecision` plus the candidate edges it can affect.

    Produced by :meth:`repro.core.engine.SolverEngine.take_reuse_decision`
    after a committed anchor.  ``dirty_eids`` — when not ``None`` — is an
    exact superset of the dense edge ids whose cached follower entries (or
    reuse classification) can differ from the previous round; every other
    candidate is guaranteed fully reusable with an unchanged gain, so the
    GAS candidate heap re-examines only the dirty ones.  ``dirty_eids is
    None`` means the information is unavailable (the tree was rebuilt from
    scratch, e.g. after a full-peel fallback) and every candidate must be
    re-examined, with ``decision`` still exact.
    """

    decision: ReuseDecision
    dirty_eids: Optional[Set[int]] = None


@dataclass
class ReuseStats:
    """Per-round reuse statistics (the FR / PR / NR split of Fig. 10)."""

    fully_reusable: int = 0
    partially_reusable: int = 0
    non_reusable: int = 0

    @property
    def total(self) -> int:
        return self.fully_reusable + self.partially_reusable + self.non_reusable

    def fractions(self) -> Dict[str, float]:
        total = max(1, self.total)
        return {
            "FR": self.fully_reusable / total,
            "PR": self.partially_reusable / total,
            "NR": self.non_reusable / total,
        }


def compute_reuse_decision(
    old_tree: TrussComponentTree,
    new_tree: TrussComponentTree,
    committed_anchor: Edge,
    committed_followers: Set[Edge],
) -> ReuseDecision:
    """Decide which cached follower entries survive the committed anchoring.

    Parameters
    ----------
    old_tree / new_tree:
        The truss component trees before and after the anchor was committed
        (both carry their own :class:`TrussState`).
    committed_anchor:
        The edge that was just anchored.
    committed_followers:
        Its follower set (their trussness rose by one).
    """
    decision = ReuseDecision()
    invalid_node_ids = decision.invalid_node_ids
    invalid_edges = decision.invalid_edges
    old_state = old_tree.state
    new_state = new_tree.state

    old_index, old_t_arr, old_l_arr, old_anchor = old_state.kernel_views()
    new_index, new_t_arr, new_l_arr, _new_anchor = new_state.kernel_views()
    old_node_of_eid = old_tree.node_of_eid
    new_node_of_eid = new_tree.node_of_eid
    fast = (
        old_index is new_index
        and old_node_of_eid is not None
        and new_node_of_eid is not None
    )

    if fast:
        # Steps 1 + 4 fused in the dense-id domain.  An old node's signature
        # (edge membership plus per-edge t/l) differs from the new node of
        # the same id exactly when the edge-id sets differ or some member
        # edge's (t, l) changed — so one array scan for changed edges plus a
        # per-node membership comparison reproduces the tuple-signature
        # comparison below without materialising any signatures.
        edge_of = old_index.edge_of
        for eid in range(old_index.num_edges):
            if old_anchor[eid]:
                continue
            if new_t_arr[eid] != old_t_arr[eid] or new_l_arr[eid] != old_l_arr[eid]:
                # 4. Edges whose own t/l changed cannot reuse anything: their
                #    candidate generation (Lemma 2 cond (i)) depends on t/l.
                invalid_edges.add(edge_of[eid])
                invalid_node_ids.add(old_node_of_eid[eid])
                new_node = new_node_of_eid[eid]
                if new_node >= 0:  # the edge may be the new anchor
                    invalid_node_ids.add(new_node)
        old_nodes = old_tree.nodes
        new_nodes = new_tree.nodes
        for node_id, node in old_nodes.items():
            new_node = new_nodes.get(node_id)
            if new_node is None or new_node.edge_ids != node.edge_ids:
                invalid_node_ids.add(node_id)
        for node_id in new_nodes:
            if node_id not in old_nodes:
                invalid_node_ids.add(node_id)
    else:  # pragma: no cover - reference-built trees / distinct snapshots
        # 1. Nodes that changed membership, trussness or layers — or
        #    disappeared or newly appeared — are invalid.
        old_signatures = old_tree.signatures()
        new_signatures = new_tree.signatures()
        for node_id, signature in old_signatures.items():
            if new_signatures.get(node_id) != signature:
                invalid_node_ids.add(node_id)
        for node_id in new_signatures:
            if node_id not in old_signatures:
                invalid_node_ids.add(node_id)
        # 4. Edges whose own trussness or layer changed.
        old_layer = old_state.decomposition.layer
        new_trussness = new_state.decomposition.trussness
        new_layer = new_state.decomposition.layer
        for edge, old_t in old_state.decomposition.trussness.items():
            new_t = new_trussness.get(edge)
            if new_t is None:
                # The edge is anchored in the new state (it has no trussness).
                invalid_edges.add(edge)
            elif new_t != old_t or new_layer[edge] != old_layer[edge]:
                invalid_edges.add(edge)

    # 2. Every node adjacent to the committed anchor with trussness at least
    #    t(x) may now host followers it could not host before (the anchor's
    #    support became infinite), so it is invalidated in both trees.
    invalid_node_ids |= old_tree.sla(committed_anchor)
    if not new_state.is_anchor(committed_anchor):  # pragma: no cover - defensive
        invalid_node_ids |= new_tree.sla(committed_anchor)
    if committed_anchor in old_tree.node_of_edge:
        invalid_node_ids.add(old_tree.node_of_edge[committed_anchor])

    # 3. Nodes that hosted the followers before, and nodes hosting them now.
    for follower in committed_followers:
        if follower in old_tree.node_of_edge:
            invalid_node_ids.add(old_tree.node_of_edge[follower])
        if follower in new_tree.node_of_edge:
            invalid_node_ids.add(new_tree.node_of_edge[follower])

    return decision


def classify_reuse(
    cached_ids: Set[int],
    decision: ReuseDecision,
    edge: Edge,
) -> str:
    """Classify one edge's cache entry as "FR", "PR" or "NR" (Fig. 10).

    ``cached_ids`` is only read (membership tests), so callers may pass a
    shared set without copying.
    """
    if edge in decision.invalid_edges or not cached_ids:
        return "NR"
    invalid_node_ids = decision.invalid_node_ids
    invalid = sum(1 for node_id in cached_ids if node_id in invalid_node_ids)
    if not invalid:
        return "FR"
    if invalid == len(cached_ids):
        return "NR"
    return "PR"


# ---------------------------------------------------------------------------
# Seed reference implementation (benchmark "before" bar)
# ---------------------------------------------------------------------------
def _signatures_reference(tree: TrussComponentTree):
    """Seed per-call signature computation (no caching, state-API lookups)."""
    state = tree.state
    result = {}
    for node_id, node in tree.nodes.items():
        detail = tuple(
            sorted(
                (edge, float(state.trussness(edge)), float(state.layer(edge)))
                for edge in node.edges
            )
        )
        result[node_id] = (node.edges, detail)
    return result


def compute_reuse_decision_reference(
    old_tree: TrussComponentTree,
    new_tree: TrussComponentTree,
    committed_anchor: Edge,
    committed_followers: Set[Edge],
) -> ReuseDecision:
    """Seed implementation of the invalidation analysis.

    Kept verbatim — fresh per-call signatures, per-edge state-API t/l
    comparisons — as the "before" bar of ``benchmarks/bench_kernel.py``.
    Returns exactly the same decision as :func:`compute_reuse_decision`.
    """
    decision = ReuseDecision()

    old_signatures = _signatures_reference(old_tree)
    new_signatures = _signatures_reference(new_tree)

    for node_id, signature in old_signatures.items():
        if new_signatures.get(node_id) != signature:
            decision.invalid_node_ids.add(node_id)
    for node_id in new_signatures:
        if node_id not in old_signatures:
            decision.invalid_node_ids.add(node_id)

    old_state = old_tree.state
    decision.invalid_node_ids |= old_tree.sla(committed_anchor)
    if not new_tree.state.is_anchor(committed_anchor):  # pragma: no cover - defensive
        decision.invalid_node_ids |= new_tree.sla(committed_anchor)
    if committed_anchor in old_tree.node_of_edge:
        decision.invalid_node_ids.add(old_tree.node_of_edge[committed_anchor])

    for follower in committed_followers:
        if follower in old_tree.node_of_edge:
            decision.invalid_node_ids.add(old_tree.node_of_edge[follower])
        if follower in new_tree.node_of_edge:
            decision.invalid_node_ids.add(new_tree.node_of_edge[follower])

    new_state = new_tree.state
    for edge in old_state.non_anchor_edges():
        if new_state.is_anchor(edge):
            decision.invalid_edges.add(edge)
            continue
        if (
            old_state.trussness(edge) != new_state.trussness(edge)
            or old_state.layer(edge) != new_state.layer(edge)
        ):
            decision.invalid_edges.add(edge)

    return decision
