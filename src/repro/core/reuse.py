"""Follower-reuse bookkeeping between greedy rounds (Algorithm 5 / Lemma 5).

After an anchor is committed, most of the per-edge follower sets computed in
the previous round are still valid: trussness changes are confined to the
anchor's followers, and follower sets are cached *per tree node*
(``F[e][id]``).  This module decides which cached entries survive.

The invalidation rule is the paper's Algorithm 5 extended conservatively
(DESIGN.md §3.3): a cached entry ``F[e][id]`` is kept only when

* the node ``id`` exists before and after the anchoring with an identical
  edge set and identical per-edge trussness / layer values,
* ``id`` is not in ``sla(x)`` of the committed anchor ``x`` (the anchor's
  infinite support may enable new followers in any adjacent node, even one
  whose own edges did not move), and
* the trussness and layer of ``e`` itself did not change.

The conservative rule can only invalidate *more* entries than the paper's
rule, so GAS remains exactly equivalent to BASE+; the reuse-rate experiment
(Fig. 10) shows that the overwhelming majority of entries is still reused.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Optional, Set

from repro.core.component_tree import TrussComponentTree
from repro.graph.graph import Edge


@dataclass
class ReuseDecision:
    """Outcome of the invalidation analysis for one committed anchor."""

    #: Node ids whose cached follower entries must be recomputed.
    invalid_node_ids: Set[int] = field(default_factory=set)
    #: Edges whose whole cache entry must be dropped (their own t/l changed).
    invalid_edges: Set[Edge] = field(default_factory=set)

    def is_node_valid(self, node_id: int) -> bool:
        return node_id not in self.invalid_node_ids


@dataclass
class ReuseStats:
    """Per-round reuse statistics (the FR / PR / NR split of Fig. 10)."""

    fully_reusable: int = 0
    partially_reusable: int = 0
    non_reusable: int = 0

    @property
    def total(self) -> int:
        return self.fully_reusable + self.partially_reusable + self.non_reusable

    def fractions(self) -> Dict[str, float]:
        total = max(1, self.total)
        return {
            "FR": self.fully_reusable / total,
            "PR": self.partially_reusable / total,
            "NR": self.non_reusable / total,
        }


def compute_reuse_decision(
    old_tree: TrussComponentTree,
    new_tree: TrussComponentTree,
    committed_anchor: Edge,
    committed_followers: Set[Edge],
) -> ReuseDecision:
    """Decide which cached follower entries survive the committed anchoring.

    Parameters
    ----------
    old_tree / new_tree:
        The truss component trees before and after the anchor was committed
        (both carry their own :class:`TrussState`).
    committed_anchor:
        The edge that was just anchored.
    committed_followers:
        Its follower set (their trussness rose by one).
    """
    decision = ReuseDecision()

    old_signatures = old_tree.signatures()
    new_signatures = new_tree.signatures()

    # 1. Nodes that changed membership, trussness or layers — or disappeared
    #    or newly appeared — are invalid.
    for node_id, signature in old_signatures.items():
        if new_signatures.get(node_id) != signature:
            decision.invalid_node_ids.add(node_id)
    for node_id in new_signatures:
        if node_id not in old_signatures:
            decision.invalid_node_ids.add(node_id)

    # 2. Every node adjacent to the committed anchor with trussness at least
    #    t(x) may now host followers it could not host before (the anchor's
    #    support became infinite), so it is invalidated in both trees.
    old_state = old_tree.state
    decision.invalid_node_ids |= old_tree.sla(committed_anchor)
    if not new_tree.state.is_anchor(committed_anchor):  # pragma: no cover - defensive
        decision.invalid_node_ids |= new_tree.sla(committed_anchor)
    if committed_anchor in old_tree.node_of_edge:
        decision.invalid_node_ids.add(old_tree.node_of_edge[committed_anchor])

    # 3. Nodes that hosted the followers before, and nodes hosting them now.
    for follower in committed_followers:
        if follower in old_tree.node_of_edge:
            decision.invalid_node_ids.add(old_tree.node_of_edge[follower])
        if follower in new_tree.node_of_edge:
            decision.invalid_node_ids.add(new_tree.node_of_edge[follower])

    # 4. Edges whose own trussness or layer changed cannot reuse anything:
    #    their candidate generation (Lemma 2 condition (i)) depends on t/l.
    new_state = new_tree.state
    for edge in old_state.non_anchor_edges():
        if new_state.is_anchor(edge):
            decision.invalid_edges.add(edge)
            continue
        if (
            old_state.trussness(edge) != new_state.trussness(edge)
            or old_state.layer(edge) != new_state.layer(edge)
        ):
            decision.invalid_edges.add(edge)

    return decision


def classify_reuse(
    cached_ids: Set[int],
    decision: ReuseDecision,
    edge: Edge,
) -> str:
    """Classify one edge's cache entry as "FR", "PR" or "NR" (Fig. 10)."""
    if edge in decision.invalid_edges or not cached_ids:
        return "NR"
    invalid = {node_id for node_id in cached_ids if node_id in decision.invalid_node_ids}
    if not invalid:
        return "FR"
    if invalid == cached_ids:
        return "NR"
    return "PR"
