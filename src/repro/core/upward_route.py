"""Upward routes (Definitions 6 and 7) and their statistics (Table IV).

An upward route from ``e_s`` to ``e_t`` is a chain of triangles whose edges
all share the trussness of ``e_s`` and appear in non-decreasing deletion
order.  Lemma 2 shows that the followers of an anchor can only lie on upward
routes rooted at the anchor's qualifying neighbour-edges — this is the
candidate restriction that makes the follower search local.

This module exposes the reachable route set of a potential anchor (used by
the ``Tur`` baseline and the Table IV statistics) and a route-existence
check used by the tests of Lemma 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.followers import _expand_candidates, _initial_candidates
from repro.graph.graph import Edge, Graph
from repro.truss.state import TrussState


def upward_route_edges(state: TrussState, anchor: Edge) -> Set[Edge]:
    """All edges reachable from ``anchor`` along upward routes.

    The set starts from the anchor's neighbour-edges that satisfy condition
    (i) of Lemma 2 and is closed under the route expansion of Definition 7
    (same trussness, non-decreasing deletion order).  It is a superset of
    the follower set ``F(anchor, G)``.
    """
    anchor = state.graph.require_edge(anchor)
    seeds = _initial_candidates(state, anchor, strict=True)
    return _expand_candidates(state, seeds)


def upward_route_size(state: TrussState, anchor: Edge) -> int:
    """Number of edges on the upward routes rooted at ``anchor`` (Table IV)."""
    return len(upward_route_edges(state, anchor))


@dataclass(frozen=True)
class RouteStatistics:
    """Summary statistics of the upward-route sizes of a graph (Table IV)."""

    minimum: int
    maximum: int
    total: int
    average: float
    per_edge: Dict[Edge, int]

    @classmethod
    def empty(cls) -> "RouteStatistics":
        return cls(minimum=0, maximum=0, total=0, average=0.0, per_edge={})


def upward_route_statistics(
    state: TrussState, edges: Optional[Iterable[Edge]] = None
) -> RouteStatistics:
    """Route-size statistics over ``edges`` (default: every non-anchored edge).

    The paper's Table IV reports the minimum, maximum, sum and average route
    size when every edge of the graph is considered as the anchor in the
    first round of GAS.
    """
    pool = list(edges) if edges is not None else list(state.non_anchor_edges())
    per_edge: Dict[Edge, int] = {}
    for edge in pool:
        per_edge[edge] = upward_route_size(state, edge)
    if not per_edge:
        return RouteStatistics.empty()
    sizes = list(per_edge.values())
    total = sum(sizes)
    return RouteStatistics(
        minimum=min(sizes),
        maximum=max(sizes),
        total=total,
        average=total / len(sizes),
        per_edge=per_edge,
    )


def has_upward_route(state: TrussState, source: Edge, target: Edge) -> bool:
    """Is there an upward route from ``source`` to ``target`` (Definition 7)?

    Used by the Lemma 2 property tests: every follower must either satisfy
    condition (i) directly or be reachable by an upward route from a
    qualifying neighbour-edge of the anchor.
    """
    source = state.graph.require_edge(source)
    target = state.graph.require_edge(target)
    if state.trussness(source) != state.trussness(target):
        return False
    reachable = _expand_candidates(state, {source})
    return target in reachable
