"""Follower computation for a single anchor edge (Section III-B of the paper).

When an edge ``x`` is anchored its support becomes infinite, which may allow
other edges to survive one more level of the truss peeling.  The edges whose
trussness increases are the *followers* ``F(x, G)``; by Lemma 1 every
follower increases by exactly one, so the trussness gain of anchoring ``x``
equals ``|F(x, G)|``.

Three interchangeable implementations are provided:

``recompute``
    Ground truth: rerun the anchored truss decomposition on the whole graph
    and diff the trussness values.  ``O(m^{1.5})`` per anchor — this is what
    the paper's ``BASE`` algorithm does.

``peel``
    Candidate restriction via the upward-route reachable set (Lemma 2)
    followed by an exact greatest-fixed-point peeling per trussness level.
    This keeps the work proportional to the size of the affected region.

``support-check``
    A faithful implementation of the paper's Algorithm 3: per-hull min-heaps
    keyed by the peeling layer, optimistic *effective triangle* counting
    (Definition 8), and the ``Retract`` cascade that withdraws support when a
    candidate is eliminated.

All three return exactly the same follower set; the test-suite asserts this
on hundreds of random graphs.
"""

from __future__ import annotations

import heapq
from enum import Enum
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.graph.graph import Edge, Graph, normalize_edge
from repro.truss.state import TrussState
from repro.utils.errors import InvalidParameterError


class FollowerMethod(str, Enum):
    """Selector for the follower-computation strategy."""

    RECOMPUTE = "recompute"
    PEEL = "peel"
    SUPPORT_CHECK = "support-check"


# ---------------------------------------------------------------------------
# Ground truth: full anchored re-decomposition
# ---------------------------------------------------------------------------
def followers_by_recompute(state: TrussState, anchor: Edge) -> Set[Edge]:
    """Followers of ``anchor`` obtained by re-running truss decomposition."""
    anchor = state.graph.require_edge(anchor)
    if state.is_anchor(anchor):
        raise InvalidParameterError(f"edge {anchor!r} is already anchored")
    anchored_state = state.with_anchor(anchor)
    return anchored_state.followers_relative_to(state)


def trussness_gain_of_anchor(state: TrussState, anchor: Edge) -> int:
    """Trussness gain of anchoring one extra edge (``= |F(x, G)|`` by Lemma 1)."""
    return len(followers_by_recompute(state, anchor))


# ---------------------------------------------------------------------------
# Candidate collection (upward-route reachable superset, Lemma 2)
# ---------------------------------------------------------------------------
def _initial_candidates(
    state: TrussState, anchor: Edge, strict: bool
) -> Set[Edge]:
    """Neighbour-edges of the anchor satisfying Lemma 2 condition (i).

    With ``strict=True`` the layer comparison is strict (``l(e) > l(x)``),
    exactly as written in the paper.  With ``strict=False`` same-layer
    neighbour-edges are also included; this is only ever a superset and is
    used by the peeling method for extra safety margin.
    """
    t_anchor = state.trussness(anchor)
    l_anchor = state.layer(anchor)
    result: Set[Edge] = set()
    for e1, e2, _w in state.triangles(anchor):
        for edge in (e1, e2):
            if state.is_anchor(edge):
                continue
            t_edge = state.trussness(edge)
            if t_edge > t_anchor:
                result.add(edge)
            elif t_edge == t_anchor:
                l_edge = state.layer(edge)
                if l_edge > l_anchor or (not strict and l_edge == l_anchor):
                    result.add(edge)
    return result


def _expand_candidates(state: TrussState, seeds: Set[Edge]) -> Set[Edge]:
    """Upward-route reachable closure of ``seeds``.

    From a candidate ``e`` at trussness ``k`` the search may move to any
    neighbour-edge ``e'`` with ``t(e') = k`` and ``e ≺ e'`` (Definition 7).
    The closure is a superset of the follower set by Lemma 2.
    """
    candidates: Set[Edge] = set(seeds)
    stack: List[Edge] = list(seeds)
    while stack:
        edge = stack.pop()
        k = state.trussness(edge)
        l_edge = state.layer(edge)
        for e1, e2, _w in state.triangles(edge):
            for nxt in (e1, e2):
                if nxt in candidates or state.is_anchor(nxt):
                    continue
                if state.trussness(nxt) == k and state.layer(nxt) >= l_edge:
                    candidates.add(nxt)
                    stack.append(nxt)
    return candidates


# ---------------------------------------------------------------------------
# Method "peel": exact greatest fixed point on the candidate set
# ---------------------------------------------------------------------------
def followers_candidate_peel(
    state: TrussState,
    anchor: Edge,
    candidate_filter: Optional[Set[Edge]] = None,
) -> Set[Edge]:
    """Followers of ``anchor`` via candidate restriction + per-level peeling.

    For every trussness level ``k`` present among the candidates, the level-k
    followers are exactly the maximal set ``S`` of level-k candidates such
    that every member closes at least ``k - 1`` triangles whose other two
    edges are each either the anchor, an already-anchored edge, an edge of
    trussness ``>= k + 1``, or another member of ``S``.  The maximal such set
    is computed by iterative peeling.

    ``candidate_filter`` optionally restricts the considered candidates (used
    by the tree-based reuse of GAS, which recomputes followers only inside
    selected tree nodes).
    """
    anchor = state.graph.require_edge(anchor)
    if state.is_anchor(anchor):
        raise InvalidParameterError(f"edge {anchor!r} is already anchored")

    seeds = _initial_candidates(state, anchor, strict=False)
    if candidate_filter is not None:
        seeds &= candidate_filter
    candidates = _expand_candidates(state, seeds)
    if candidate_filter is not None:
        candidates &= candidate_filter
    candidates.discard(anchor)

    by_level: Dict[int, Set[Edge]] = {}
    for edge in candidates:
        by_level.setdefault(int(state.trussness(edge)), set()).add(edge)

    followers: Set[Edge] = set()
    for k, level_candidates in by_level.items():
        followers |= _peel_level(state, anchor, k, level_candidates)
    return followers


def _peel_level(
    state: TrussState, anchor: Edge, k: int, members: Set[Edge]
) -> Set[Edge]:
    """Greatest fixed point of the level-k support condition over ``members``."""

    def is_solid(edge: Edge) -> bool:
        # Edges that are guaranteed to be in the (k+1)-truss of the anchored
        # graph: the new anchor, previously anchored edges, and edges whose
        # trussness is already at least k + 1.
        if edge == anchor or state.is_anchor(edge):
            return True
        return state.trussness(edge) >= k + 1

    alive: Set[Edge] = set(members)
    support: Dict[Edge, int] = {}
    for edge in alive:
        count = 0
        for e1, e2, _w in state.triangles(edge):
            if (is_solid(e1) or e1 in alive) and (is_solid(e2) or e2 in alive):
                count += 1
        support[edge] = count

    threshold = k - 1
    queue: List[Edge] = [edge for edge in alive if support[edge] < threshold]
    removed: Set[Edge] = set(queue)
    while queue:
        edge = queue.pop()
        alive.discard(edge)
        for e1, e2, _w in state.triangles(edge):
            for member, partner in ((e1, e2), (e2, e1)):
                if member in alive and (is_solid(partner) or partner in alive):
                    support[member] -= 1
                    if support[member] < threshold and member not in removed:
                        removed.add(member)
                        queue.append(member)
    return alive


# ---------------------------------------------------------------------------
# Method "support-check": the paper's Algorithm 3
# ---------------------------------------------------------------------------
_UNCHECKED = 0
_SURVIVED = 1
_ELIMINATED = 2


def followers_support_check(
    state: TrussState,
    anchor: Edge,
    candidate_filter: Optional[Set[Edge]] = None,
) -> Set[Edge]:
    """Followers of ``anchor`` via the paper's Algorithm 3 (GetFollowers).

    The algorithm walks the upward routes rooted at the anchor's qualifying
    neighbour-edges hull by hull.  Candidates are popped from a min-heap
    keyed by their peeling layer; a popped candidate *survives* when its
    number of effective triangles (Definition 8) reaches ``t(e) - 1``,
    otherwise it is *eliminated* and the ``Retract`` cascade withdraws the
    support it had lent to previously surviving edges.

    ``candidate_filter`` restricts both the initial pushes and the route
    expansion to the given edge set (used by GAS for per-tree-node reuse).
    """
    anchor = state.graph.require_edge(anchor)
    if state.is_anchor(anchor):
        raise InvalidParameterError(f"edge {anchor!r} is already anchored")

    graph = state.graph
    initial = _initial_candidates(state, anchor, strict=True)
    if candidate_filter is not None:
        initial &= candidate_filter

    heaps: Dict[int, List[Tuple[int, int, Edge]]] = {}
    pushed: Set[Edge] = set()
    for edge in initial:
        level = int(state.trussness(edge))
        heaps.setdefault(level, [])
        heapq.heappush(heaps[level], (int(state.layer(edge)), graph.edge_id(edge), edge))
        pushed.add(edge)

    followers: Set[Edge] = set()

    for level in sorted(heaps):
        heap = heaps[level]
        status: Dict[Edge, int] = {}
        survived: Set[Edge] = set()

        def effectiveness(edge: Edge, other: Edge) -> bool:
            """Is ``other`` usable in an effective triangle of ``edge``?"""
            if other == anchor or state.is_anchor(other):
                return True
            if status.get(other) == _ELIMINATED:
                return False
            t_other = state.trussness(other)
            if t_other < level:
                # line 6 of Algorithm 3: lower-trussness edges are eliminated
                return False
            if status.get(other) == _SURVIVED:
                return True
            return state.precedes(edge, other)

        def effective_triangles(edge: Edge) -> int:
            count = 0
            for e1, e2, _w in state.triangles(edge):
                if effectiveness(edge, e1) and effectiveness(edge, e2):
                    count += 1
            return count

        def retract(edge: Edge) -> None:
            """Cascade eliminations after ``edge`` lost its survived status."""
            stack = [edge]
            while stack:
                lost = stack.pop()
                for e1, e2, _w in state.triangles(lost):
                    for neighbour in (e1, e2):
                        if neighbour in survived and status.get(neighbour) == _SURVIVED:
                            if effective_triangles(neighbour) < level - 1:
                                status[neighbour] = _ELIMINATED
                                survived.discard(neighbour)
                                stack.append(neighbour)

        while heap:
            _layer, _edge_id, edge = heapq.heappop(heap)
            if status.get(edge) is not None:
                continue
            if effective_triangles(edge) >= level - 1:
                status[edge] = _SURVIVED
                survived.add(edge)
                edge_layer = state.layer(edge)
                for e1, e2, _w in state.triangles(edge):
                    for neighbour in (e1, e2):
                        if neighbour in pushed or state.is_anchor(neighbour):
                            continue
                        if candidate_filter is not None and neighbour not in candidate_filter:
                            continue
                        if (
                            state.trussness(neighbour) == level
                            and state.layer(neighbour) >= edge_layer
                        ):
                            heapq.heappush(
                                heap,
                                (int(state.layer(neighbour)), graph.edge_id(neighbour), neighbour),
                            )
                            pushed.add(neighbour)
            else:
                status[edge] = _ELIMINATED
                retract(edge)

        followers |= survived

    followers.discard(anchor)
    return followers


# ---------------------------------------------------------------------------
# Dispatcher
# ---------------------------------------------------------------------------
def compute_followers(
    state: TrussState,
    anchor: Edge,
    method: FollowerMethod | str = FollowerMethod.SUPPORT_CHECK,
    candidate_filter: Optional[Set[Edge]] = None,
) -> Set[Edge]:
    """Compute ``F(anchor, G_A)`` with the selected method.

    Parameters
    ----------
    state:
        Current trussness state (graph + already-anchored edges).
    anchor:
        The edge whose anchoring is being evaluated.
    method:
        One of :class:`FollowerMethod` (or its string value).
    candidate_filter:
        Optional restriction of the candidate edges (tree-node reuse); not
        supported by the ``recompute`` method.
    """
    method = FollowerMethod(method)
    if method is FollowerMethod.RECOMPUTE:
        if candidate_filter is not None:
            raise InvalidParameterError("candidate_filter is not supported by 'recompute'")
        return followers_by_recompute(state, anchor)
    if method is FollowerMethod.PEEL:
        return followers_candidate_peel(state, anchor, candidate_filter)
    return followers_support_check(state, anchor, candidate_filter)
