"""Follower computation for a single anchor edge (Section III-B of the paper).

When an edge ``x`` is anchored its support becomes infinite, which may allow
other edges to survive one more level of the truss peeling.  The edges whose
trussness increases are the *followers* ``F(x, G)``; by Lemma 1 every
follower increases by exactly one, so the trussness gain of anchoring ``x``
equals ``|F(x, G)|``.

Three interchangeable implementations are provided:

``recompute``
    Ground truth: rerun the anchored truss decomposition on the whole graph
    and diff the trussness values.  ``O(m^{1.5})`` per anchor — this is what
    the paper's ``BASE`` algorithm does.

``peel``
    Candidate restriction via the upward-route reachable set (Lemma 2)
    followed by an exact greatest-fixed-point peeling per trussness level.
    This keeps the work proportional to the size of the affected region.

``support-check``
    A faithful implementation of the paper's Algorithm 3: per-hull min-heaps
    keyed by the peeling layer, optimistic *effective triangle* counting
    (Definition 8), and the ``Retract`` cascade that withdraws support when a
    candidate is eliminated.

All three return exactly the same follower set; the test-suite asserts this
on hundreds of random graphs.

The local methods run in the *integer domain* of the shared
:class:`~repro.graph.index.GraphIndex`: candidates, heaps and status flags
are keyed by dense edge ids, trussness/layer lookups are list indexing, and
triangle queries read the precomputed per-edge triple lists.  The original
tuple-domain implementations are preserved verbatim in
:mod:`repro.core.followers_reference` and the test-suite asserts both agree.
"""

from __future__ import annotations

import heapq
from enum import Enum
from typing import Dict, List, Optional, Set, Tuple

from repro.graph.graph import Edge
from repro.truss.state import TrussState
from repro.utils.errors import InvalidParameterError


class FollowerMethod(str, Enum):
    """Selector for the follower-computation strategy."""

    RECOMPUTE = "recompute"
    PEEL = "peel"
    SUPPORT_CHECK = "support-check"


# ---------------------------------------------------------------------------
# Ground truth: full anchored re-decomposition
# ---------------------------------------------------------------------------
def followers_by_recompute(state: TrussState, anchor: Edge) -> Set[Edge]:
    """Followers of ``anchor`` obtained by re-running truss decomposition."""
    anchor = state.graph.require_edge(anchor)
    if state.is_anchor(anchor):
        raise InvalidParameterError(f"edge {anchor!r} is already anchored")
    anchored_state = state.with_anchor(anchor)
    return anchored_state.followers_relative_to(state)


def trussness_gain_of_anchor(state: TrussState, anchor: Edge) -> int:
    """Trussness gain of anchoring one extra edge (``= |F(x, G)|`` by Lemma 1)."""
    return len(followers_by_recompute(state, anchor))


# ---------------------------------------------------------------------------
# Candidate collection (upward-route reachable superset, Lemma 2)
# ---------------------------------------------------------------------------
def _initial_candidate_ids(state: TrussState, anchor_id: int, strict: bool) -> Set[int]:
    """Dense ids of the anchor's neighbour-edges satisfying Lemma 2 cond (i).

    With ``strict=True`` the layer comparison is strict (``l(e) > l(x)``),
    exactly as written in the paper.  With ``strict=False`` same-layer
    neighbour-edges are also included; this is only ever a superset and is
    used by the peeling method for extra safety margin.
    """
    index, trussness, layer, anchor_mask = state.kernel_views()
    t_anchor = trussness[anchor_id]
    l_anchor = layer[anchor_id]
    result: Set[int] = set()
    for e1, e2, _w in index.edge_triangles[anchor_id]:
        for eid in (e1, e2):
            if eid in result or anchor_mask[eid]:
                continue
            t_edge = trussness[eid]
            if t_edge > t_anchor:
                result.add(eid)
            elif t_edge == t_anchor:
                l_edge = layer[eid]
                if l_edge > l_anchor or (not strict and l_edge == l_anchor):
                    result.add(eid)
    return result


def _expand_candidate_ids(state: TrussState, seeds: Set[int]) -> Set[int]:
    """Upward-route reachable closure of ``seeds`` (dense edge ids).

    From a candidate ``e`` at trussness ``k`` the search may move to any
    neighbour-edge ``e'`` with ``t(e') = k`` and ``e ≺ e'`` (Definition 7).
    The closure is a superset of the follower set by Lemma 2.
    """
    index, trussness, layer, anchor_mask = state.kernel_views()
    edge_triangles = index.edge_triangles
    candidates: Set[int] = set(seeds)
    stack: List[int] = list(seeds)
    while stack:
        eid = stack.pop()
        k = trussness[eid]
        l_edge = layer[eid]
        for e1, e2, _w in edge_triangles[eid]:
            for nxt in (e1, e2):
                if nxt in candidates or anchor_mask[nxt]:
                    continue
                if trussness[nxt] == k and layer[nxt] >= l_edge:
                    candidates.add(nxt)
                    stack.append(nxt)
    return candidates


def _initial_candidates(state: TrussState, anchor: Edge, strict: bool) -> Set[Edge]:
    """Tuple-domain view of :func:`_initial_candidate_ids` (upward routes)."""
    index = state.index
    anchor_id = index.eid_of[state.graph.require_edge(anchor)]
    edge_of = index.edge_of
    return {edge_of[eid] for eid in _initial_candidate_ids(state, anchor_id, strict)}


def _expand_candidates(state: TrussState, seeds: Set[Edge]) -> Set[Edge]:
    """Tuple-domain view of :func:`_expand_candidate_ids` (upward routes)."""
    index = state.index
    eid_of = index.eid_of
    edge_of = index.edge_of
    seed_ids = {eid_of[state.graph.require_edge(e)] for e in seeds}
    return {edge_of[eid] for eid in _expand_candidate_ids(state, seed_ids)}


def _resolve_filter_ids(
    state: TrussState,
    candidate_filter: Optional[Set[Edge]],
    candidate_filter_ids: Optional[Set[int]],
) -> Optional[Set[int]]:
    """Normalise the two filter spellings to a dense-id set (or ``None``)."""
    if candidate_filter_ids is not None:
        return candidate_filter_ids
    if candidate_filter is None:
        return None
    eid_of = state.index.eid_of
    graph = state.graph
    return {eid_of[graph.require_edge(e)] for e in candidate_filter}


# ---------------------------------------------------------------------------
# Method "peel": exact greatest fixed point on the candidate set
# ---------------------------------------------------------------------------
def followers_candidate_peel(
    state: TrussState,
    anchor: Edge,
    candidate_filter: Optional[Set[Edge]] = None,
    candidate_filter_ids: Optional[Set[int]] = None,
) -> Set[Edge]:
    """Followers of ``anchor`` via candidate restriction + per-level peeling.

    For every trussness level ``k`` present among the candidates, the level-k
    followers are exactly the maximal set ``S`` of level-k candidates such
    that every member closes at least ``k - 1`` triangles whose other two
    edges are each either the anchor, an already-anchored edge, an edge of
    trussness ``>= k + 1``, or another member of ``S``.  The maximal such set
    is computed by iterative peeling.

    ``candidate_filter`` (edge tuples) or ``candidate_filter_ids`` (dense
    edge ids, the hot-path spelling used by GAS) optionally restricts the
    considered candidates to selected tree nodes.
    """
    anchor = state.graph.require_edge(anchor)
    if state.is_anchor(anchor):
        raise InvalidParameterError(f"edge {anchor!r} is already anchored")

    index, trussness, _layer, _anchor_mask = state.kernel_views()
    anchor_id = index.eid_of[anchor]
    filter_ids = _resolve_filter_ids(state, candidate_filter, candidate_filter_ids)

    seeds = _initial_candidate_ids(state, anchor_id, strict=False)
    if filter_ids is not None:
        seeds &= filter_ids
    candidates = _expand_candidate_ids(state, seeds)
    if filter_ids is not None:
        candidates &= filter_ids
    candidates.discard(anchor_id)

    by_level: Dict[int, Set[int]] = {}
    for eid in candidates:
        by_level.setdefault(int(trussness[eid]), set()).add(eid)

    edge_of = index.edge_of
    followers: Set[Edge] = set()
    for k, level_candidates in by_level.items():
        for eid in _peel_level_ids(state, anchor_id, k, level_candidates):
            followers.add(edge_of[eid])
    return followers


def _peel_level_ids(
    state: TrussState, anchor_id: int, k: int, members: Set[int]
) -> Set[int]:
    """Greatest fixed point of the level-k support condition over ``members``."""
    index, trussness, _layer, anchor_mask = state.kernel_views()
    edge_triangles = index.edge_triangles
    solid_level = k + 1

    def is_solid(eid: int) -> bool:
        # Edges guaranteed to be in the (k+1)-truss of the anchored graph:
        # the new anchor, previously anchored edges, and edges whose
        # trussness is already at least k + 1.
        return eid == anchor_id or anchor_mask[eid] or trussness[eid] >= solid_level

    alive: Set[int] = set(members)
    support: Dict[int, int] = {}
    for eid in alive:
        count = 0
        for e1, e2, _w in edge_triangles[eid]:
            if (is_solid(e1) or e1 in alive) and (is_solid(e2) or e2 in alive):
                count += 1
        support[eid] = count

    threshold = k - 1
    queue: List[int] = [eid for eid in alive if support[eid] < threshold]
    removed: Set[int] = set(queue)
    while queue:
        eid = queue.pop()
        alive.discard(eid)
        for e1, e2, _w in edge_triangles[eid]:
            for member, partner in ((e1, e2), (e2, e1)):
                if member in alive and (is_solid(partner) or partner in alive):
                    support[member] -= 1
                    if support[member] < threshold and member not in removed:
                        removed.add(member)
                        queue.append(member)
    return alive


# ---------------------------------------------------------------------------
# Method "support-check": the paper's Algorithm 3
# ---------------------------------------------------------------------------
_UNCHECKED = 0
_SURVIVED = 1
_ELIMINATED = 2


def followers_support_check(
    state: TrussState,
    anchor: Edge,
    candidate_filter: Optional[Set[Edge]] = None,
    candidate_filter_ids: Optional[Set[int]] = None,
) -> Set[Edge]:
    """Followers of ``anchor`` via the paper's Algorithm 3 (GetFollowers).

    The algorithm walks the upward routes rooted at the anchor's qualifying
    neighbour-edges hull by hull.  Candidates are popped from a min-heap
    keyed by their peeling layer; a popped candidate *survives* when its
    number of effective triangles (Definition 8) reaches ``t(e) - 1``,
    otherwise it is *eliminated* and the ``Retract`` cascade withdraws the
    support it had lent to previously surviving edges.

    ``candidate_filter`` / ``candidate_filter_ids`` restrict both the initial
    pushes and the route expansion to the given edge set (used by GAS for
    per-tree-node reuse).

    Everything runs on dense edge ids: the heap holds ``(layer, eid)`` pairs
    (dense-id order equals public edge-id order, so the tie-breaking matches
    the reference), the per-level status is a bytearray, and triangle queries
    read the index's precomputed triple lists.
    """
    anchor = state.graph.require_edge(anchor)
    if state.is_anchor(anchor):
        raise InvalidParameterError(f"edge {anchor!r} is already anchored")

    index, trussness, layer, anchor_mask = state.kernel_views()
    edge_triangles = index.edge_triangles
    anchor_id = index.eid_of[anchor]
    filter_ids = _resolve_filter_ids(state, candidate_filter, candidate_filter_ids)

    initial = _initial_candidate_ids(state, anchor_id, strict=True)
    if filter_ids is not None:
        initial &= filter_ids
    if not initial:
        # Common on sparse graphs (no qualifying neighbour-edges): skip the
        # per-call overlay allocations entirely.
        return set()

    heaps: Dict[int, List[Tuple[float, int]]] = {}
    pushed = bytearray(index.num_edges)
    for eid in initial:
        heaps.setdefault(int(trussness[eid]), []).append((layer[eid], eid))
        pushed[eid] = 1

    heappush = heapq.heappush
    heappop = heapq.heappop

    followers_ids: List[int] = []

    for level in sorted(heaps):
        heap = heaps[level]
        heapq.heapify(heap)
        status = bytearray(index.num_edges)
        survived: Set[int] = set()
        needed = level - 1

        def effective_triangles(eid: int) -> int:
            """Triangles of ``eid`` whose two other edges are both effective."""
            count = 0
            l_edge = layer[eid]
            for e1, e2, _w in edge_triangles[eid]:
                # Inlined effectiveness(eid, other) for both triangle edges:
                # the anchor and anchored edges always help; eliminated or
                # lower-trussness edges never do; surviving edges help; an
                # unchecked edge helps when the deletion order eid ≺ other
                # holds (Definition 8).
                if e1 != anchor_id and not anchor_mask[e1]:
                    s1 = status[e1]
                    if s1 == _ELIMINATED:
                        continue
                    t1 = trussness[e1]
                    if t1 < level:
                        continue
                    if s1 != _SURVIVED and t1 == level and layer[e1] < l_edge:
                        continue
                if e2 != anchor_id and not anchor_mask[e2]:
                    s2 = status[e2]
                    if s2 == _ELIMINATED:
                        continue
                    t2 = trussness[e2]
                    if t2 < level:
                        continue
                    if s2 != _SURVIVED and t2 == level and layer[e2] < l_edge:
                        continue
                count += 1
            return count

        def retract(eid: int) -> None:
            """Cascade eliminations after ``eid`` lost its survived status."""
            stack = [eid]
            while stack:
                lost = stack.pop()
                for e1, e2, _w in edge_triangles[lost]:
                    for neighbour in (e1, e2):
                        if status[neighbour] == _SURVIVED:
                            if effective_triangles(neighbour) < needed:
                                status[neighbour] = _ELIMINATED
                                survived.discard(neighbour)
                                stack.append(neighbour)

        while heap:
            l_edge, eid = heappop(heap)
            if status[eid]:
                continue
            if effective_triangles(eid) >= needed:
                status[eid] = _SURVIVED
                survived.add(eid)
                for e1, e2, _w in edge_triangles[eid]:
                    for neighbour in (e1, e2):
                        if pushed[neighbour] or anchor_mask[neighbour]:
                            continue
                        if filter_ids is not None and neighbour not in filter_ids:
                            continue
                        if trussness[neighbour] == level and layer[neighbour] >= l_edge:
                            heappush(heap, (layer[neighbour], neighbour))
                            pushed[neighbour] = 1
            else:
                status[eid] = _ELIMINATED
                retract(eid)

        followers_ids.extend(survived)

    edge_of = index.edge_of
    return {edge_of[eid] for eid in followers_ids if eid != anchor_id}


# ---------------------------------------------------------------------------
# Dispatcher
# ---------------------------------------------------------------------------
def compute_followers(
    state: TrussState,
    anchor: Edge,
    method: FollowerMethod | str = FollowerMethod.SUPPORT_CHECK,
    candidate_filter: Optional[Set[Edge]] = None,
    candidate_filter_ids: Optional[Set[int]] = None,
) -> Set[Edge]:
    """Compute ``F(anchor, G_A)`` with the selected method.

    Parameters
    ----------
    state:
        Current trussness state (graph + already-anchored edges).
    anchor:
        The edge whose anchoring is being evaluated.
    method:
        One of :class:`FollowerMethod` (or its string value).
    candidate_filter:
        Optional restriction of the candidate edges (tree-node reuse); not
        supported by the ``recompute`` method.
    candidate_filter_ids:
        The same restriction spelled in dense edge ids (takes precedence;
        used by the GAS hot loop to avoid tuple conversions).
    """
    method = FollowerMethod(method)
    if method is FollowerMethod.RECOMPUTE:
        if candidate_filter is not None or candidate_filter_ids is not None:
            raise InvalidParameterError("candidate_filter is not supported by 'recompute'")
        return followers_by_recompute(state, anchor)
    if method is FollowerMethod.PEEL:
        return followers_candidate_peel(state, anchor, candidate_filter, candidate_filter_ids)
    return followers_support_check(state, anchor, candidate_filter, candidate_filter_ids)
