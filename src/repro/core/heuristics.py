"""Random baseline anchor selectors: Rand, Sup and Tur (Section IV-A).

The paper compares GAS against three randomised selectors:

* ``Rand`` draws ``b`` anchors uniformly from all edges;
* ``Sup`` draws them from the top 20 % of edges by support;
* ``Tur`` draws them from the top 20 % of edges by upward-route size.

Each selector is repeated many times (2000 in the paper; configurable here)
and the *maximum* achieved trussness gain over the repetitions is reported,
exactly as in the paper's Exp-1 and Exp-3.

All three are registered in the solver registry; the public functions are
thin wrappers that share the engine's baseline state instead of recomputing
the original decomposition per call.
"""

from __future__ import annotations

import random
import time
from typing import Dict, Optional, Sequence

from repro.api.spec import SolveSpec
from repro.core.engine import SolverEngine, register_solver
from repro.core.result import AnchorResult, evaluate_anchor_set
from repro.core.upward_route import upward_route_size
from repro.graph.graph import Edge, Graph
from repro.graph.triangles import support_map
from repro.truss.state import TrussState
from repro.utils.errors import InvalidParameterError
from repro.utils.rng import make_rng

DEFAULT_TOP_FRACTION = 0.2
DEFAULT_REPETITIONS = 200


def _run_repetitions(
    graph: Graph,
    pool: Sequence[Edge],
    budget: int,
    repetitions: int,
    rng: random.Random,
    algorithm: str,
    baseline_state: TrussState,
) -> AnchorResult:
    """Draw ``repetitions`` random anchor sets from ``pool``; keep the best."""
    if budget < 0:
        raise InvalidParameterError("budget must be non-negative")
    if repetitions < 1:
        raise InvalidParameterError("repetitions must be positive")
    if not pool:
        raise InvalidParameterError("candidate pool is empty")
    start = time.perf_counter()
    effective_budget = min(budget, len(pool))

    best_result: Optional[AnchorResult] = None
    for _ in range(repetitions):
        anchors = rng.sample(list(pool), effective_budget)
        result = evaluate_anchor_set(
            graph, anchors, algorithm=algorithm, baseline_state=baseline_state
        )
        if best_result is None or result.gain > best_result.gain:
            best_result = result
    assert best_result is not None
    best_result.elapsed_seconds = time.perf_counter() - start
    best_result.extra["repetitions"] = repetitions
    best_result.extra["pool_size"] = len(pool)
    return best_result


def _top_fraction(request: SolveSpec) -> float:
    top_fraction = float(request.param("top_fraction", DEFAULT_TOP_FRACTION))
    if not 0.0 < top_fraction <= 1.0:
        raise InvalidParameterError("top_fraction must be in (0, 1]")
    return top_fraction


@register_solver(
    "rand",
    description="best of N uniformly random anchor sets",
    params=("repetitions", "seed"),
    randomized=True,
)
def _solve_rand(engine: SolverEngine, request: SolveSpec) -> AnchorResult:
    request.reject_initial_anchors("rand")
    graph = engine.graph
    rng = make_rng(request.param("seed"))
    pool = graph.edge_list()
    return _run_repetitions(
        graph,
        pool,
        request.budget,
        int(request.param("repetitions", DEFAULT_REPETITIONS)),
        rng,
        "Rand",
        engine.original_state,
    )


@register_solver(
    "sup",
    description="best of N random anchor sets from top-support edges",
    params=("repetitions", "seed", "top_fraction"),
    randomized=True,
)
def _solve_sup(engine: SolverEngine, request: SolveSpec) -> AnchorResult:
    request.reject_initial_anchors("sup")
    graph = engine.graph
    top_fraction = _top_fraction(request)
    rng = make_rng(request.param("seed"))
    supports = support_map(graph)
    ranked = sorted(graph.edge_list(), key=lambda e: (-supports[e], graph.edge_id(e)))
    cutoff = max(1, int(len(ranked) * top_fraction))
    return _run_repetitions(
        graph,
        ranked[:cutoff],
        request.budget,
        int(request.param("repetitions", DEFAULT_REPETITIONS)),
        rng,
        "Sup",
        engine.original_state,
    )


@register_solver(
    "tur",
    description="best of N random anchor sets from top upward-route edges",
    params=("repetitions", "seed", "top_fraction", "route_sizes"),
    randomized=True,
)
def _solve_tur(engine: SolverEngine, request: SolveSpec) -> AnchorResult:
    request.reject_initial_anchors("tur")
    graph = engine.graph
    top_fraction = _top_fraction(request)
    rng = make_rng(request.param("seed"))
    baseline_state = engine.original_state
    route_sizes = request.param("route_sizes")
    if route_sizes is None:
        route_sizes = {
            edge: upward_route_size(baseline_state, edge) for edge in graph.edges()
        }
    ranked = sorted(
        graph.edge_list(), key=lambda e: (-route_sizes.get(e, 0), graph.edge_id(e))
    )
    cutoff = max(1, int(len(ranked) * top_fraction))
    return _run_repetitions(
        graph,
        ranked[:cutoff],
        request.budget,
        int(request.param("repetitions", DEFAULT_REPETITIONS)),
        rng,
        "Tur",
        baseline_state,
    )


# ---------------------------------------------------------------------------
# Public wrappers (unchanged signatures)
# ---------------------------------------------------------------------------
def random_baseline(
    graph: Graph,
    budget: int,
    repetitions: int = DEFAULT_REPETITIONS,
    seed: int | random.Random | None = None,
    baseline_state: Optional[TrussState] = None,
) -> AnchorResult:
    """``Rand``: anchors drawn uniformly from all edges."""
    engine = SolverEngine(graph, baseline_state=baseline_state)
    return engine.solve("rand", budget, repetitions=repetitions, seed=seed)


def support_baseline(
    graph: Graph,
    budget: int,
    repetitions: int = DEFAULT_REPETITIONS,
    top_fraction: float = DEFAULT_TOP_FRACTION,
    seed: int | random.Random | None = None,
    baseline_state: Optional[TrussState] = None,
) -> AnchorResult:
    """``Sup``: anchors drawn from the top ``top_fraction`` edges by support."""
    engine = SolverEngine(graph, baseline_state=baseline_state)
    return engine.solve(
        "sup", budget, repetitions=repetitions, top_fraction=top_fraction, seed=seed
    )


def upward_route_baseline(
    graph: Graph,
    budget: int,
    repetitions: int = DEFAULT_REPETITIONS,
    top_fraction: float = DEFAULT_TOP_FRACTION,
    seed: int | random.Random | None = None,
    baseline_state: Optional[TrussState] = None,
    route_sizes: Optional[Dict[Edge, int]] = None,
) -> AnchorResult:
    """``Tur``: anchors drawn from the top ``top_fraction`` edges by upward-route size.

    ``route_sizes`` may be supplied to reuse sizes already computed for
    Table IV; otherwise they are computed here.
    """
    engine = SolverEngine(graph, baseline_state=baseline_state)
    return engine.solve(
        "tur",
        budget,
        repetitions=repetitions,
        top_fraction=top_fraction,
        seed=seed,
        route_sizes=route_sizes,
    )
