"""Random baseline anchor selectors: Rand, Sup and Tur (Section IV-A).

The paper compares GAS against three randomised selectors:

* ``Rand`` draws ``b`` anchors uniformly from all edges;
* ``Sup`` draws them from the top 20 % of edges by support;
* ``Tur`` draws them from the top 20 % of edges by upward-route size.

Each selector is repeated many times (2000 in the paper; configurable here)
and the *maximum* achieved trussness gain over the repetitions is reported,
exactly as in the paper's Exp-1 and Exp-3.
"""

from __future__ import annotations

import random
import time
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.result import AnchorResult, evaluate_anchor_set
from repro.core.upward_route import upward_route_size
from repro.graph.graph import Edge, Graph
from repro.graph.triangles import support_map
from repro.truss.state import TrussState
from repro.utils.errors import InvalidParameterError
from repro.utils.rng import make_rng

DEFAULT_TOP_FRACTION = 0.2


def _run_repetitions(
    graph: Graph,
    pool: Sequence[Edge],
    budget: int,
    repetitions: int,
    rng: random.Random,
    algorithm: str,
    baseline_state: TrussState,
) -> AnchorResult:
    """Draw ``repetitions`` random anchor sets from ``pool``; keep the best."""
    if budget < 0:
        raise InvalidParameterError("budget must be non-negative")
    if repetitions < 1:
        raise InvalidParameterError("repetitions must be positive")
    if not pool:
        raise InvalidParameterError("candidate pool is empty")
    start = time.perf_counter()
    effective_budget = min(budget, len(pool))

    best_result: Optional[AnchorResult] = None
    for _ in range(repetitions):
        anchors = rng.sample(list(pool), effective_budget)
        result = evaluate_anchor_set(
            graph, anchors, algorithm=algorithm, baseline_state=baseline_state
        )
        if best_result is None or result.gain > best_result.gain:
            best_result = result
    assert best_result is not None
    best_result.elapsed_seconds = time.perf_counter() - start
    best_result.extra["repetitions"] = repetitions
    best_result.extra["pool_size"] = len(pool)
    return best_result


def random_baseline(
    graph: Graph,
    budget: int,
    repetitions: int = 200,
    seed: int | random.Random | None = None,
    baseline_state: Optional[TrussState] = None,
) -> AnchorResult:
    """``Rand``: anchors drawn uniformly from all edges."""
    rng = make_rng(seed)
    baseline_state = baseline_state or TrussState.compute(graph)
    pool = graph.edge_list()
    return _run_repetitions(graph, pool, budget, repetitions, rng, "Rand", baseline_state)


def support_baseline(
    graph: Graph,
    budget: int,
    repetitions: int = 200,
    top_fraction: float = DEFAULT_TOP_FRACTION,
    seed: int | random.Random | None = None,
    baseline_state: Optional[TrussState] = None,
) -> AnchorResult:
    """``Sup``: anchors drawn from the top ``top_fraction`` edges by support."""
    if not 0.0 < top_fraction <= 1.0:
        raise InvalidParameterError("top_fraction must be in (0, 1]")
    rng = make_rng(seed)
    baseline_state = baseline_state or TrussState.compute(graph)
    supports = support_map(graph)
    ranked = sorted(graph.edge_list(), key=lambda e: (-supports[e], graph.edge_id(e)))
    cutoff = max(1, int(len(ranked) * top_fraction))
    pool = ranked[:cutoff]
    return _run_repetitions(graph, pool, budget, repetitions, rng, "Sup", baseline_state)


def upward_route_baseline(
    graph: Graph,
    budget: int,
    repetitions: int = 200,
    top_fraction: float = DEFAULT_TOP_FRACTION,
    seed: int | random.Random | None = None,
    baseline_state: Optional[TrussState] = None,
    route_sizes: Optional[Dict[Edge, int]] = None,
) -> AnchorResult:
    """``Tur``: anchors drawn from the top ``top_fraction`` edges by upward-route size.

    ``route_sizes`` may be supplied to reuse sizes already computed for
    Table IV; otherwise they are computed here.
    """
    if not 0.0 < top_fraction <= 1.0:
        raise InvalidParameterError("top_fraction must be in (0, 1]")
    rng = make_rng(seed)
    baseline_state = baseline_state or TrussState.compute(graph)
    if route_sizes is None:
        route_sizes = {
            edge: upward_route_size(baseline_state, edge) for edge in graph.edges()
        }
    ranked = sorted(
        graph.edge_list(), key=lambda e: (-route_sizes.get(e, 0), graph.edge_id(e))
    )
    cutoff = max(1, int(len(ranked) * top_fraction))
    pool = ranked[:cutoff]
    return _run_repetitions(graph, pool, budget, repetitions, rng, "Tur", baseline_state)
