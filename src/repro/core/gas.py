"""GAS — the paper's full algorithm (Algorithm 6).

GAS runs the same greedy framework as BASE+ but avoids recomputing follower
sets from scratch in every round:

1. follower sets are cached *per (candidate edge, tree node)* — ``F[e][id]``
   in the paper's notation;
2. after an anchor is committed, the truss component tree is advanced (by
   the engine's incremental patch, or a rebuild) and the reuse rule of
   :mod:`repro.core.reuse` decides which cached entries are still valid;
3. in the next round only the invalidated entries are recomputed, and the
   recomputation is restricted to the affected tree nodes (the
   ``candidate_filter`` argument of the follower search).

Because the reuse rule is conservative, GAS selects exactly the same anchors
as BASE+ and BASE (under the shared smallest-edge-id tie-breaking); the
test-suite verifies this equivalence.

Candidate selection: heap vs scan
---------------------------------
Historically every round re-scanned *all* candidate edges to find the best
gain, even though the reuse rule proves that most cached gains are
unchanged.  The default ``candidates="heap"`` strategy replaces the scan
with a **lazily-invalidated max-heap** keyed by the cached gains:

* a commit yields (via :meth:`SolverEngine.take_reuse_decision`) the exact
  set of *dirty* candidates — the edges inside the re-peel's dirty closure,
  the edges whose ``sla`` sets the tree patch touched, and the edges whose
  ``sla`` references an invalidated node; only those are refreshed and
  re-pushed;
* every other candidate's cached gain is provably unchanged, so its heap
  entry is still valid; stale entries (superseded scores) are discarded
  lazily at pop time;
* ties break exactly like the scan: the heap key is ``(-gain, eid)``, so
  the smallest edge id among the maximal gains wins.

``candidates="scan"`` forces the previous full-scan behaviour (the
reference twin); both strategies share the per-candidate refresh helper, so
anchors, gains, reuse statistics and recompute counts are byte-identical —
asserted by the test-suite on randomized anchored graphs.

The public :func:`gas` is a thin wrapper over the solver registry: the round
loop runs against a :class:`~repro.core.engine.SolverEngine`, which owns the
state (advanced by incremental re-peeling after each committed anchor), the
component tree and the follower caches.  The pre-engine implementation is
preserved verbatim as :func:`gas_reference` for the equivalence tests and
the before/after benchmarks.
"""

from __future__ import annotations

import heapq
import time
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.api.spec import SolveSpec
from repro.core.component_tree import TrussComponentTree
from repro.core.engine import SolverEngine, register_solver
from repro.core.followers import FollowerMethod, compute_followers
from repro.core.result import AnchorResult, evaluate_anchor_set
from repro.core.reuse import (
    ReuseDecision,
    ReuseInvalidation,
    ReuseStats,
    classify_reuse,
    compute_reuse_decision,
)
from repro.graph.graph import Edge, Graph
from repro.graph.index import GraphIndex
from repro.truss.state import TrussState
from repro.utils.errors import InvalidParameterError

CacheEntry = Dict[int, FrozenSet[Edge]]

#: Shared empty sla set for edges that close no triangle.
_EMPTY_SLA: FrozenSet[int] = frozenset()


def _validate(graph: Graph, budget: int, method: FollowerMethod | str) -> FollowerMethod:
    if budget < 0:
        raise InvalidParameterError("budget must be non-negative")
    if budget > graph.num_edges:
        raise InvalidParameterError(
            f"budget {budget} exceeds the number of edges {graph.num_edges}"
        )
    method = FollowerMethod(method)
    if method is FollowerMethod.RECOMPUTE:
        raise InvalidParameterError(
            "GAS requires a local follower method ('support-check' or 'peel')"
        )
    return method


def _refresh_entry(
    state: TrussState,
    tree: TrussComponentTree,
    cache: Dict[int, CacheEntry],
    totals: Dict[int, int],
    method: FollowerMethod,
    decision: Optional[ReuseDecision],
    invalid_eids: Optional[Set[int]],
    eid: int,
    edge: Edge,
    sla_ids,
    stats: ReuseStats,
) -> bool:
    """Refresh one candidate's cached follower entry ``F[edge][*]``.

    This is the per-candidate body shared by the full scan and the heap
    strategy — keeping it in one place is what makes the two strategies
    byte-identical (entries, totals, reuse classification and recompute
    accounting all come from here).  Returns ``True`` when followers were
    actually recomputed (the ``recomputed_entries_per_round`` metric).
    """
    entry = cache.get(eid)
    dirty = False
    if invalid_eids is None or entry is None or eid in invalid_eids:
        entry = {}
        cache[eid] = entry
        needed = set(sla_ids)
        dirty = True
        if decision is not None:
            stats.non_reusable += 1
    else:
        for node_id in list(entry):
            if node_id not in sla_ids:
                del entry[node_id]
                dirty = True
        invalid_node_ids = decision.invalid_node_ids
        needed = {
            node_id
            for node_id in sla_ids
            if node_id not in entry or node_id in invalid_node_ids
        }
        category = classify_reuse(sla_ids, decision, edge)
        if category == "FR" and not needed:
            stats.fully_reusable += 1
        elif needed and len(needed) != len(sla_ids):
            stats.partially_reusable += 1
        elif needed:
            stats.non_reusable += 1
        else:
            stats.fully_reusable += 1

    recomputed = False
    if needed:
        recomputed = True
        candidate_filter_ids: Set[int] = set()
        for node_id in needed:
            candidate_filter_ids |= tree.nodes[node_id].edge_ids
        followers = compute_followers(
            state, edge, method=method, candidate_filter_ids=candidate_filter_ids
        )
        buckets: Dict[int, Set[Edge]] = {node_id: set() for node_id in needed}
        for follower in followers:
            buckets[tree.node_of_edge[follower]].add(follower)
        for node_id, bucket in buckets.items():
            entry[node_id] = frozenset(bucket)
        dirty = True

    if dirty:
        totals[eid] = sum(len(bucket) for bucket in entry.values())
    return recomputed


def _pop_best(heap: List[Tuple[int, int]], score_of: Dict[int, int]) -> Tuple[int, int]:
    """Pop the best *fresh* heap entry: max gain, smallest eid on ties.

    Entries whose score no longer matches the candidate's current score (or
    whose candidate was committed) are stale and discarded lazily; every
    live candidate always has one fresh entry, pushed when its score last
    changed.
    """
    while heap:
        neg_score, eid = heapq.heappop(heap)
        if score_of.get(eid) == -neg_score:
            return eid, -neg_score
    return -1, -1


@register_solver(
    "gas",
    description="greedy with per-tree-node follower reuse (Algorithm 6)",
    params=("method", "collect_reuse_stats", "candidates"),
)
def _solve_gas(engine: SolverEngine, request: SolveSpec) -> AnchorResult:
    graph = engine.graph
    budget = request.budget
    method = _validate(graph, budget, request.param("method", FollowerMethod.SUPPORT_CHECK))
    collect_reuse_stats = bool(request.param("collect_reuse_stats", True))
    strategy = str(request.param("candidates", "heap"))
    if strategy not in ("heap", "scan"):
        raise InvalidParameterError(
            f"unknown candidates strategy {strategy!r}; expected 'heap' or 'scan'"
        )
    use_heap = strategy == "heap"

    start = time.perf_counter()
    original_state = engine.original_state
    state = engine.state
    tree = engine.tree()

    # Follower cache F[e][node_id], keyed by dense edge id (stable for the
    # lifetime of the run — the graph is never mutated), plus the cached
    # total follower count per entry (recomputed only when the entry moves).
    # Both live on the engine so a session spans rounds (and solves).
    cache = engine.follower_cache
    totals = engine.follower_totals
    # Warm path: an unanchored session that solved before restores its
    # baseline follower snapshot — every entry was computed against exactly
    # this first-round state (and the freshly rebuilt tree's node ids are
    # deterministic), so round one reads cached totals instead of
    # recomputing every candidate's followers.
    warm_baseline = budget > 0 and engine.restore_baseline_followers()
    invalidation: Optional[ReuseInvalidation] = None
    # Lazy candidate max-heap: entries are (-gain, eid); score_of holds each
    # live candidate's current gain (the freshness check at pop time).
    heap: List[Tuple[int, int]] = []
    score_of: Dict[int, int] = {}
    per_round_gain: List[int] = []
    reuse_rounds: List[Dict[str, float]] = []
    recompute_counts: List[int] = []
    cumulative_seconds: List[float] = []

    for _round in range(budget):
        stats = ReuseStats()
        recomputed_entries = 0
        # The candidate refresh runs in the dense-id domain of the shared
        # index: trussness deltas are list lookups, sla sets come
        # precomputed from the tree, and the smallest-edge-id tie-break is
        # plain eid order (dense ids are ascending in public edge id).
        index, current_trussness, _ly, anchor_mask = state.kernel_views()
        original_trussness = original_state.kernel_views()[1]
        edge_of = index.edge_of
        sla_sets = tree.sla_sets  # None only for reference-built trees
        decision = invalidation.decision if invalidation is not None else None
        invalid_eids: Optional[Set[int]] = None
        if decision is not None:
            eid_of = index.eid_of
            invalid_eids = {eid_of[e] for e in decision.invalid_edges}
        dirty_eids = invalidation.dirty_eids if invalidation is not None else None

        if _round == 0 and warm_baseline:
            # Warm first round (restored baseline snapshot): every cached
            # entry and total is already exact for this state, so the scan
            # only reads totals — zero follower recomputations.  Scores and
            # heap contents end up identical to a cold first round, which
            # keeps every later round byte-identical too.
            best_eid = -1
            best_count = -1
            for eid in range(index.num_edges):
                if anchor_mask[eid]:
                    continue
                total = totals[eid]
                if use_heap and score_of.get(eid) != total:
                    score_of[eid] = total
                    heapq.heappush(heap, (-total, eid))
                if total > best_count:
                    best_eid, best_count = eid, total
        elif use_heap and decision is not None and dirty_eids is not None:
            # Heap round: only the dirty closure is re-examined; every other
            # candidate's cached gain (and FR classification) is provably
            # unchanged, so its heap entry is still fresh.
            refreshed = 0
            for eid in sorted(dirty_eids):
                if anchor_mask[eid]:
                    continue
                refreshed += 1
                edge = edge_of[eid]
                sla_ids = sla_sets[eid] or _EMPTY_SLA  # type: ignore[index]
                if _refresh_entry(
                    state, tree, cache, totals, method, decision,
                    invalid_eids, eid, edge, sla_ids, stats,
                ):
                    recomputed_entries += 1
                score = totals[eid] - (
                    current_trussness[eid] - original_trussness[eid]
                )
                if score_of.get(eid) != score:
                    score_of[eid] = score
                    heapq.heappush(heap, (-score, eid))
            stats.fully_reusable += (
                index.num_edges - len(state.anchors) - refreshed
            )
            best_eid, best_count = _pop_best(heap, score_of)
        else:
            # Full pass: the first round, the forced "scan" strategy, and
            # heap rounds right after a from-scratch tree rebuild (no dirty
            # closure available).
            best_eid = -1
            best_count = -1
            for eid in range(index.num_edges):
                if anchor_mask[eid]:
                    continue
                edge = edge_of[eid]
                if sla_sets is not None:
                    sla_ids = sla_sets[eid] or _EMPTY_SLA  # precomputed
                else:
                    sla_ids = tree.sla(edge)
                if _refresh_entry(
                    state, tree, cache, totals, method, decision,
                    invalid_eids, eid, edge, sla_ids, stats,
                ):
                    recomputed_entries += 1
                # Marginal gain of Definition 4: follower count minus the
                # gain the candidate itself accumulated as a follower of
                # earlier anchors (forfeited once it becomes an anchor).
                accumulated = current_trussness[eid] - original_trussness[eid]
                total = totals[eid] - accumulated
                if use_heap and score_of.get(eid) != total:
                    score_of[eid] = total
                    heapq.heappush(heap, (-total, eid))
                if total > best_count:
                    best_eid, best_count = eid, total

        if _round == 0 and not warm_baseline:
            # Cold unanchored first round: persist the freshly computed
            # baseline follower cache across future resets (no-op when the
            # session carries anchors or already has a snapshot).
            engine.snapshot_baseline_followers()

        if best_eid < 0:
            break
        best_edge = edge_of[best_eid]

        followers_of_best: Set[Edge] = set()
        for bucket in cache[best_eid].values():
            followers_of_best |= bucket

        engine.commit_anchor(best_edge)
        cache.pop(best_eid, None)
        totals.pop(best_eid, None)
        score_of.pop(best_eid, None)
        per_round_gain.append(best_count)
        recompute_counts.append(recomputed_entries)
        if collect_reuse_stats and decision is not None:
            reuse_rounds.append(stats.fractions())

        if _round + 1 < budget:
            # The incremental state advance, tree patch and reuse analysis
            # only feed the next round's candidate refresh; after the final
            # anchor there is no next round (the engine's state is lazy, so
            # nothing is computed for it).
            state = engine.state
            tree = engine.tree()
            invalidation = engine.take_reuse_decision(best_edge, followers_of_best)
        cumulative_seconds.append(time.perf_counter() - start)

    elapsed = time.perf_counter() - start
    # Evaluate against the engine's own baseline: no redundant recompute, and
    # with an anchored baseline_state the reported gain measures the same
    # problem the rounds actually scored.
    result = evaluate_anchor_set(
        graph,
        engine.anchors,
        algorithm="GAS",
        elapsed_seconds=elapsed,
        baseline_state=original_state,
    )
    result.per_round_gain = per_round_gain
    result.extra["follower_method"] = method.value
    result.extra["candidate_strategy"] = strategy
    result.extra["recomputed_entries_per_round"] = recompute_counts
    result.extra["cumulative_seconds_per_round"] = cumulative_seconds
    if collect_reuse_stats:
        result.extra["reuse_stats"] = reuse_rounds
    result.extra["engine"] = dict(engine.stats)
    return result


def gas(
    graph: Graph,
    budget: int,
    initial_anchors: Iterable[Edge] = (),
    method: FollowerMethod | str = FollowerMethod.SUPPORT_CHECK,
    collect_reuse_stats: bool = True,
    candidates: str = "heap",
    tree_mode: str = "patch",
) -> AnchorResult:
    """Select ``budget`` anchor edges with the GAS algorithm.

    Parameters
    ----------
    graph:
        Input graph (not modified).
    budget:
        Number of anchor edges to select (the paper's ``b``).
    initial_anchors:
        Edges considered already anchored before the first round.
    method:
        Follower-computation strategy used for the per-node recomputations
        (``support-check`` by default; ``peel`` for the ablation study).
    collect_reuse_stats:
        When true, the per-round FR/PR/NR reuse statistics (Fig. 10) are
        recorded in ``result.extra["reuse_stats"]``.
    candidates:
        Candidate-selection strategy: ``"heap"`` (default, lazily-invalidated
        max-heap — only the dirty closure of each commit is re-examined) or
        ``"scan"`` (the previous full scan per round; reference twin).
    tree_mode:
        Component-tree maintenance of the underlying engine: ``"patch"``
        (default, incremental) or ``"rebuild"`` (full rebuild per round;
        reference twin).  Both knobs change timings only — never results.
    """
    engine = SolverEngine(graph, tree_mode=tree_mode)
    return engine.solve(
        "gas",
        budget,
        initial_anchors=initial_anchors,
        method=method,
        collect_reuse_stats=collect_reuse_stats,
        candidates=candidates,
    )


def gas_reference(
    graph: Graph,
    budget: int,
    initial_anchors: Iterable[Edge] = (),
    method: FollowerMethod | str = FollowerMethod.SUPPORT_CHECK,
    collect_reuse_stats: bool = True,
) -> AnchorResult:
    """Pre-engine GAS: full re-decomposition and tree rebuild per round.

    Kept verbatim as the ground truth for the engine equivalence tests and
    as the "PR 1" bar of the engine benchmarks (and, under the benchmark's
    ``legacy_mode``, as the carrier of the seed tuple-domain stack).
    """
    method = _validate(graph, budget, method)

    start = time.perf_counter()
    # One frozen kernel snapshot is shared by every decomposition, follower
    # recomputation and tree rebuild below (anchors are overlay sets, so the
    # graph — and therefore the index — never changes during the run).
    GraphIndex.of(graph)
    anchors: List[Edge] = [graph.require_edge(e) for e in initial_anchors]
    original_state = TrussState.compute(graph)
    state = (
        TrussState.compute(graph, anchors) if anchors else original_state
    )
    tree = TrussComponentTree.build(state)

    cache: Dict[int, CacheEntry] = {}
    totals: Dict[int, int] = {}
    decision: Optional[ReuseDecision] = None
    per_round_gain: List[int] = []
    reuse_rounds: List[Dict[str, float]] = []
    recompute_counts: List[int] = []
    cumulative_seconds: List[float] = []

    for _round in range(budget):
        stats = ReuseStats()
        recomputed_entries = 0
        best_eid = -1
        best_count = -1
        index, current_trussness, _ly, anchor_mask = state.kernel_views()
        original_trussness = original_state.kernel_views()[1]
        edge_of = index.edge_of
        sla_sets = tree.sla_sets  # None only for reference-built trees
        invalid_eids: Optional[Set[int]] = None
        if decision is not None:
            eid_of = index.eid_of
            invalid_eids = {eid_of[e] for e in decision.invalid_edges}

        for eid in range(index.num_edges):
            if anchor_mask[eid]:
                continue
            edge = edge_of[eid]
            if sla_sets is not None:
                sla_ids = sla_sets[eid] or _EMPTY_SLA  # precomputed, read-only
            else:
                sla_ids = tree.sla(edge)
            entry = cache.get(eid)
            dirty = False
            if invalid_eids is None or entry is None or eid in invalid_eids:
                entry = {}
                cache[eid] = entry
                needed = set(sla_ids)
                dirty = True
                if decision is not None:
                    stats.non_reusable += 1
            else:
                for node_id in list(entry):
                    if node_id not in sla_ids:
                        del entry[node_id]
                        dirty = True
                invalid_node_ids = decision.invalid_node_ids
                needed = {
                    node_id
                    for node_id in sla_ids
                    if node_id not in entry or node_id in invalid_node_ids
                }
                category = classify_reuse(sla_ids, decision, edge)
                if category == "FR" and not needed:
                    stats.fully_reusable += 1
                elif needed and len(needed) != len(sla_ids):
                    stats.partially_reusable += 1
                elif needed:
                    stats.non_reusable += 1
                else:
                    stats.fully_reusable += 1

            if needed:
                recomputed_entries += 1
                candidate_filter_ids: Set[int] = set()
                for node_id in needed:
                    candidate_filter_ids |= tree.nodes[node_id].edge_ids
                followers = compute_followers(
                    state, edge, method=method, candidate_filter_ids=candidate_filter_ids
                )
                buckets: Dict[int, Set[Edge]] = {node_id: set() for node_id in needed}
                for follower in followers:
                    buckets[tree.node_of_edge[follower]].add(follower)
                for node_id, bucket in buckets.items():
                    entry[node_id] = frozenset(bucket)
                dirty = True

            if dirty:
                totals[eid] = sum(len(bucket) for bucket in entry.values())
            accumulated = current_trussness[eid] - original_trussness[eid]
            total = totals[eid] - accumulated
            if total > best_count:
                best_eid, best_count = eid, total

        if best_eid < 0:
            break
        best_edge = edge_of[best_eid]

        followers_of_best: Set[Edge] = set()
        for bucket in cache[best_eid].values():
            followers_of_best |= bucket

        anchors.append(best_edge)
        cache.pop(best_eid, None)
        totals.pop(best_eid, None)
        per_round_gain.append(best_count)
        recompute_counts.append(recomputed_entries)
        if collect_reuse_stats and decision is not None:
            reuse_rounds.append(stats.fractions())

        if _round + 1 < budget:
            old_tree = tree
            state = TrussState.compute(graph, anchors)
            tree = TrussComponentTree.build(state)
            decision = compute_reuse_decision(old_tree, tree, best_edge, followers_of_best)
        cumulative_seconds.append(time.perf_counter() - start)

    elapsed = time.perf_counter() - start
    result = evaluate_anchor_set(graph, anchors, algorithm="GAS", elapsed_seconds=elapsed)
    result.per_round_gain = per_round_gain
    result.extra["follower_method"] = method.value
    result.extra["recomputed_entries_per_round"] = recompute_counts
    result.extra["cumulative_seconds_per_round"] = cumulative_seconds
    if collect_reuse_stats:
        result.extra["reuse_stats"] = reuse_rounds
    return result
