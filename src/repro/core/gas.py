"""GAS — the paper's full algorithm (Algorithm 6).

GAS runs the same greedy framework as BASE+ but avoids recomputing follower
sets from scratch in every round:

1. follower sets are cached *per (candidate edge, tree node)* — ``F[e][id]``
   in the paper's notation;
2. after an anchor is committed, the truss component tree is rebuilt and the
   reuse rule of :mod:`repro.core.reuse` decides which cached entries are
   still valid;
3. in the next round only the invalidated entries are recomputed, and the
   recomputation is restricted to the affected tree nodes (the
   ``candidate_filter`` argument of the follower search).

Because the reuse rule is conservative, GAS selects exactly the same anchors
as BASE+ and BASE (under the shared smallest-edge-id tie-breaking); the
test-suite verifies this equivalence.
"""

from __future__ import annotations

import time
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.core.component_tree import TrussComponentTree
from repro.core.followers import FollowerMethod, compute_followers
from repro.core.result import AnchorResult, evaluate_anchor_set
from repro.core.reuse import ReuseDecision, ReuseStats, classify_reuse, compute_reuse_decision
from repro.graph.graph import Edge, Graph
from repro.truss.state import TrussState
from repro.utils.errors import InvalidParameterError

CacheEntry = Dict[int, FrozenSet[Edge]]


def gas(
    graph: Graph,
    budget: int,
    initial_anchors: Iterable[Edge] = (),
    method: FollowerMethod | str = FollowerMethod.SUPPORT_CHECK,
    collect_reuse_stats: bool = True,
) -> AnchorResult:
    """Select ``budget`` anchor edges with the GAS algorithm.

    Parameters
    ----------
    graph:
        Input graph (not modified).
    budget:
        Number of anchor edges to select (the paper's ``b``).
    initial_anchors:
        Edges considered already anchored before the first round.
    method:
        Follower-computation strategy used for the per-node recomputations
        (``support-check`` by default; ``peel`` for the ablation study).
    collect_reuse_stats:
        When true, the per-round FR/PR/NR reuse statistics (Fig. 10) are
        recorded in ``result.extra["reuse_stats"]``.
    """
    if budget < 0:
        raise InvalidParameterError("budget must be non-negative")
    if budget > graph.num_edges:
        raise InvalidParameterError(
            f"budget {budget} exceeds the number of edges {graph.num_edges}"
        )
    method = FollowerMethod(method)
    if method is FollowerMethod.RECOMPUTE:
        raise InvalidParameterError(
            "GAS requires a local follower method ('support-check' or 'peel')"
        )

    start = time.perf_counter()
    anchors: List[Edge] = [graph.require_edge(e) for e in initial_anchors]
    original_state = TrussState.compute(graph)
    state = (
        TrussState.compute(graph, anchors) if anchors else original_state
    )
    tree = TrussComponentTree.build(state)

    cache: Dict[Edge, CacheEntry] = {}
    decision: Optional[ReuseDecision] = None
    per_round_gain: List[int] = []
    reuse_rounds: List[Dict[str, float]] = []
    recompute_counts: List[int] = []
    cumulative_seconds: List[float] = []

    for _round in range(budget):
        stats = ReuseStats()
        recomputed_entries = 0
        best_edge: Optional[Edge] = None
        best_count = -1
        best_id = -1

        for edge in state.non_anchor_edges():
            sla_ids = tree.sla(edge)
            entry = cache.get(edge)
            if decision is None or entry is None or edge in decision.invalid_edges:
                previous_ids: Set[int] = set(entry) if entry else set()
                entry = {}
                cache[edge] = entry
                needed = set(sla_ids)
                if decision is not None:
                    stats.non_reusable += 1
            else:
                for node_id in list(entry):
                    if node_id not in sla_ids:
                        del entry[node_id]
                needed = {
                    node_id
                    for node_id in sla_ids
                    if node_id not in entry or node_id in decision.invalid_node_ids
                }
                category = classify_reuse(set(sla_ids), decision, edge)
                if category == "FR" and not needed:
                    stats.fully_reusable += 1
                elif needed and needed != set(sla_ids):
                    stats.partially_reusable += 1
                elif needed:
                    stats.non_reusable += 1
                else:
                    stats.fully_reusable += 1

            if needed:
                recomputed_entries += 1
                candidate_filter: Set[Edge] = set()
                for node_id in needed:
                    candidate_filter |= tree.nodes[node_id].edges
                followers = compute_followers(
                    state, edge, method=method, candidate_filter=candidate_filter
                )
                buckets: Dict[int, Set[Edge]] = {node_id: set() for node_id in needed}
                for follower in followers:
                    buckets[tree.node_of_edge[follower]].add(follower)
                for node_id, bucket in buckets.items():
                    entry[node_id] = frozenset(bucket)

            # Marginal gain of Definition 4: follower count minus the gain the
            # candidate itself accumulated as a follower of earlier anchors
            # (forfeited once it becomes an anchor).  Matches BASE / BASE+.
            accumulated = int(state.trussness(edge)) - int(original_state.trussness(edge))
            total = sum(len(bucket) for bucket in entry.values()) - accumulated
            edge_id = graph.edge_id(edge)
            if total > best_count or (total == best_count and edge_id < best_id):
                best_edge, best_count, best_id = edge, total, edge_id

        if best_edge is None:
            break

        followers_of_best: Set[Edge] = set()
        for bucket in cache[best_edge].values():
            followers_of_best |= bucket

        anchors.append(best_edge)
        cache.pop(best_edge, None)
        per_round_gain.append(best_count)
        recompute_counts.append(recomputed_entries)
        if collect_reuse_stats and decision is not None:
            reuse_rounds.append(stats.fractions())

        old_tree = tree
        state = TrussState.compute(graph, anchors)
        tree = TrussComponentTree.build(state)
        decision = compute_reuse_decision(old_tree, tree, best_edge, followers_of_best)
        cumulative_seconds.append(time.perf_counter() - start)

    elapsed = time.perf_counter() - start
    result = evaluate_anchor_set(graph, anchors, algorithm="GAS", elapsed_seconds=elapsed)
    result.per_round_gain = per_round_gain
    result.extra["follower_method"] = method.value
    result.extra["recomputed_entries_per_round"] = recompute_counts
    result.extra["cumulative_seconds_per_round"] = cumulative_seconds
    if collect_reuse_stats:
        result.extra["reuse_stats"] = reuse_rounds
    return result
