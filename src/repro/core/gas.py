"""GAS — the paper's full algorithm (Algorithm 6).

GAS runs the same greedy framework as BASE+ but avoids recomputing follower
sets from scratch in every round:

1. follower sets are cached *per (candidate edge, tree node)* — ``F[e][id]``
   in the paper's notation;
2. after an anchor is committed, the truss component tree is rebuilt and the
   reuse rule of :mod:`repro.core.reuse` decides which cached entries are
   still valid;
3. in the next round only the invalidated entries are recomputed, and the
   recomputation is restricted to the affected tree nodes (the
   ``candidate_filter`` argument of the follower search).

Because the reuse rule is conservative, GAS selects exactly the same anchors
as BASE+ and BASE (under the shared smallest-edge-id tie-breaking); the
test-suite verifies this equivalence.

The public :func:`gas` is a thin wrapper over the solver registry: the round
loop runs against a :class:`~repro.core.engine.SolverEngine`, which owns the
state (advanced by incremental re-peeling after each committed anchor), the
component tree and the follower caches.  The pre-engine implementation is
preserved verbatim as :func:`gas_reference` for the equivalence tests and
the before/after benchmarks.
"""

from __future__ import annotations

import time
from typing import Dict, FrozenSet, Iterable, List, Optional, Set

from repro.core.component_tree import TrussComponentTree
from repro.core.engine import SolveRequest, SolverEngine, register_solver
from repro.core.followers import FollowerMethod, compute_followers
from repro.core.result import AnchorResult, evaluate_anchor_set
from repro.core.reuse import ReuseDecision, ReuseStats, classify_reuse, compute_reuse_decision
from repro.graph.graph import Edge, Graph
from repro.graph.index import GraphIndex
from repro.truss.state import TrussState
from repro.utils.errors import InvalidParameterError

CacheEntry = Dict[int, FrozenSet[Edge]]

#: Shared empty sla set for edges that close no triangle.
_EMPTY_SLA: FrozenSet[int] = frozenset()


def _validate(graph: Graph, budget: int, method: FollowerMethod | str) -> FollowerMethod:
    if budget < 0:
        raise InvalidParameterError("budget must be non-negative")
    if budget > graph.num_edges:
        raise InvalidParameterError(
            f"budget {budget} exceeds the number of edges {graph.num_edges}"
        )
    method = FollowerMethod(method)
    if method is FollowerMethod.RECOMPUTE:
        raise InvalidParameterError(
            "GAS requires a local follower method ('support-check' or 'peel')"
        )
    return method


@register_solver(
    "gas",
    description="greedy with per-tree-node follower reuse (Algorithm 6)",
    params=("method", "collect_reuse_stats"),
)
def _solve_gas(engine: SolverEngine, request: SolveRequest) -> AnchorResult:
    graph = engine.graph
    budget = request.budget
    method = _validate(graph, budget, request.param("method", FollowerMethod.SUPPORT_CHECK))
    collect_reuse_stats = bool(request.param("collect_reuse_stats", True))

    start = time.perf_counter()
    original_state = engine.original_state
    state = engine.state
    tree = engine.tree()

    # Follower cache F[e][node_id], keyed by dense edge id (stable for the
    # lifetime of the run — the graph is never mutated), plus the cached
    # total follower count per entry (recomputed only when the entry moves).
    # Both live on the engine so a session spans rounds (and solves).
    cache = engine.follower_cache
    totals = engine.follower_totals
    decision: Optional[ReuseDecision] = None
    per_round_gain: List[int] = []
    reuse_rounds: List[Dict[str, float]] = []
    recompute_counts: List[int] = []
    cumulative_seconds: List[float] = []

    for _round in range(budget):
        stats = ReuseStats()
        recomputed_entries = 0
        best_eid = -1
        best_count = -1
        # The candidate scan runs in the dense-id domain of the shared index:
        # trussness deltas are list lookups, sla sets come precomputed from
        # the tree, and the smallest-edge-id tie-break is plain eid order
        # (dense ids are ascending in public edge id).
        index, current_trussness, _ly, anchor_mask = state.kernel_views()
        original_trussness = original_state.kernel_views()[1]
        edge_of = index.edge_of
        sla_sets = tree.sla_sets  # None only for reference-built trees
        invalid_eids: Optional[Set[int]] = None
        if decision is not None:
            eid_of = index.eid_of
            invalid_eids = {eid_of[e] for e in decision.invalid_edges}

        for eid in range(index.num_edges):
            if anchor_mask[eid]:
                continue
            edge = edge_of[eid]
            if sla_sets is not None:
                sla_ids = sla_sets[eid] or _EMPTY_SLA  # precomputed, read-only
            else:
                sla_ids = tree.sla(edge)
            entry = cache.get(eid)
            dirty = False
            if invalid_eids is None or entry is None or eid in invalid_eids:
                entry = {}
                cache[eid] = entry
                needed = set(sla_ids)
                dirty = True
                if decision is not None:
                    stats.non_reusable += 1
            else:
                for node_id in list(entry):
                    if node_id not in sla_ids:
                        del entry[node_id]
                        dirty = True
                invalid_node_ids = decision.invalid_node_ids
                needed = {
                    node_id
                    for node_id in sla_ids
                    if node_id not in entry or node_id in invalid_node_ids
                }
                category = classify_reuse(sla_ids, decision, edge)
                if category == "FR" and not needed:
                    stats.fully_reusable += 1
                elif needed and len(needed) != len(sla_ids):
                    stats.partially_reusable += 1
                elif needed:
                    stats.non_reusable += 1
                else:
                    stats.fully_reusable += 1

            if needed:
                recomputed_entries += 1
                candidate_filter_ids: Set[int] = set()
                for node_id in needed:
                    candidate_filter_ids |= tree.nodes[node_id].edge_ids
                followers = compute_followers(
                    state, edge, method=method, candidate_filter_ids=candidate_filter_ids
                )
                buckets: Dict[int, Set[Edge]] = {node_id: set() for node_id in needed}
                for follower in followers:
                    buckets[tree.node_of_edge[follower]].add(follower)
                for node_id, bucket in buckets.items():
                    entry[node_id] = frozenset(bucket)
                dirty = True

            if dirty:
                totals[eid] = sum(len(bucket) for bucket in entry.values())
            # Marginal gain of Definition 4: follower count minus the gain the
            # candidate itself accumulated as a follower of earlier anchors
            # (forfeited once it becomes an anchor).  Matches BASE / BASE+.
            accumulated = current_trussness[eid] - original_trussness[eid]
            total = totals[eid] - accumulated
            if total > best_count:
                best_eid, best_count = eid, total

        if best_eid < 0:
            break
        best_edge = edge_of[best_eid]

        followers_of_best: Set[Edge] = set()
        for bucket in cache[best_eid].values():
            followers_of_best |= bucket

        engine.commit_anchor(best_edge)
        cache.pop(best_eid, None)
        totals.pop(best_eid, None)
        per_round_gain.append(best_count)
        recompute_counts.append(recomputed_entries)
        if collect_reuse_stats and decision is not None:
            reuse_rounds.append(stats.fractions())

        if _round + 1 < budget:
            # The incremental state advance, tree rebuild and reuse analysis
            # only feed the next round's candidate scan; after the final
            # anchor there is no next round (the engine's state is lazy, so
            # nothing is computed for it).
            old_tree = tree
            state = engine.state
            tree = engine.tree()
            decision = compute_reuse_decision(old_tree, tree, best_edge, followers_of_best)
        cumulative_seconds.append(time.perf_counter() - start)

    elapsed = time.perf_counter() - start
    # Evaluate against the engine's own baseline: no redundant recompute, and
    # with an anchored baseline_state the reported gain measures the same
    # problem the rounds actually scored.
    result = evaluate_anchor_set(
        graph,
        engine.anchors,
        algorithm="GAS",
        elapsed_seconds=elapsed,
        baseline_state=original_state,
    )
    result.per_round_gain = per_round_gain
    result.extra["follower_method"] = method.value
    result.extra["recomputed_entries_per_round"] = recompute_counts
    result.extra["cumulative_seconds_per_round"] = cumulative_seconds
    if collect_reuse_stats:
        result.extra["reuse_stats"] = reuse_rounds
    result.extra["engine"] = dict(engine.stats)
    return result


def gas(
    graph: Graph,
    budget: int,
    initial_anchors: Iterable[Edge] = (),
    method: FollowerMethod | str = FollowerMethod.SUPPORT_CHECK,
    collect_reuse_stats: bool = True,
) -> AnchorResult:
    """Select ``budget`` anchor edges with the GAS algorithm.

    Parameters
    ----------
    graph:
        Input graph (not modified).
    budget:
        Number of anchor edges to select (the paper's ``b``).
    initial_anchors:
        Edges considered already anchored before the first round.
    method:
        Follower-computation strategy used for the per-node recomputations
        (``support-check`` by default; ``peel`` for the ablation study).
    collect_reuse_stats:
        When true, the per-round FR/PR/NR reuse statistics (Fig. 10) are
        recorded in ``result.extra["reuse_stats"]``.
    """
    engine = SolverEngine(graph)
    return engine.solve(
        "gas",
        budget,
        initial_anchors=initial_anchors,
        method=method,
        collect_reuse_stats=collect_reuse_stats,
    )


def gas_reference(
    graph: Graph,
    budget: int,
    initial_anchors: Iterable[Edge] = (),
    method: FollowerMethod | str = FollowerMethod.SUPPORT_CHECK,
    collect_reuse_stats: bool = True,
) -> AnchorResult:
    """Pre-engine GAS: full re-decomposition and tree rebuild per round.

    Kept verbatim as the ground truth for the engine equivalence tests and
    as the "PR 1" bar of the engine benchmarks (and, under the benchmark's
    ``legacy_mode``, as the carrier of the seed tuple-domain stack).
    """
    method = _validate(graph, budget, method)

    start = time.perf_counter()
    # One frozen kernel snapshot is shared by every decomposition, follower
    # recomputation and tree rebuild below (anchors are overlay sets, so the
    # graph — and therefore the index — never changes during the run).
    GraphIndex.of(graph)
    anchors: List[Edge] = [graph.require_edge(e) for e in initial_anchors]
    original_state = TrussState.compute(graph)
    state = (
        TrussState.compute(graph, anchors) if anchors else original_state
    )
    tree = TrussComponentTree.build(state)

    cache: Dict[int, CacheEntry] = {}
    totals: Dict[int, int] = {}
    decision: Optional[ReuseDecision] = None
    per_round_gain: List[int] = []
    reuse_rounds: List[Dict[str, float]] = []
    recompute_counts: List[int] = []
    cumulative_seconds: List[float] = []

    for _round in range(budget):
        stats = ReuseStats()
        recomputed_entries = 0
        best_eid = -1
        best_count = -1
        index, current_trussness, _ly, anchor_mask = state.kernel_views()
        original_trussness = original_state.kernel_views()[1]
        edge_of = index.edge_of
        sla_sets = tree.sla_sets  # None only for reference-built trees
        invalid_eids: Optional[Set[int]] = None
        if decision is not None:
            eid_of = index.eid_of
            invalid_eids = {eid_of[e] for e in decision.invalid_edges}

        for eid in range(index.num_edges):
            if anchor_mask[eid]:
                continue
            edge = edge_of[eid]
            if sla_sets is not None:
                sla_ids = sla_sets[eid] or _EMPTY_SLA  # precomputed, read-only
            else:
                sla_ids = tree.sla(edge)
            entry = cache.get(eid)
            dirty = False
            if invalid_eids is None or entry is None or eid in invalid_eids:
                entry = {}
                cache[eid] = entry
                needed = set(sla_ids)
                dirty = True
                if decision is not None:
                    stats.non_reusable += 1
            else:
                for node_id in list(entry):
                    if node_id not in sla_ids:
                        del entry[node_id]
                        dirty = True
                invalid_node_ids = decision.invalid_node_ids
                needed = {
                    node_id
                    for node_id in sla_ids
                    if node_id not in entry or node_id in invalid_node_ids
                }
                category = classify_reuse(sla_ids, decision, edge)
                if category == "FR" and not needed:
                    stats.fully_reusable += 1
                elif needed and len(needed) != len(sla_ids):
                    stats.partially_reusable += 1
                elif needed:
                    stats.non_reusable += 1
                else:
                    stats.fully_reusable += 1

            if needed:
                recomputed_entries += 1
                candidate_filter_ids: Set[int] = set()
                for node_id in needed:
                    candidate_filter_ids |= tree.nodes[node_id].edge_ids
                followers = compute_followers(
                    state, edge, method=method, candidate_filter_ids=candidate_filter_ids
                )
                buckets: Dict[int, Set[Edge]] = {node_id: set() for node_id in needed}
                for follower in followers:
                    buckets[tree.node_of_edge[follower]].add(follower)
                for node_id, bucket in buckets.items():
                    entry[node_id] = frozenset(bucket)
                dirty = True

            if dirty:
                totals[eid] = sum(len(bucket) for bucket in entry.values())
            accumulated = current_trussness[eid] - original_trussness[eid]
            total = totals[eid] - accumulated
            if total > best_count:
                best_eid, best_count = eid, total

        if best_eid < 0:
            break
        best_edge = edge_of[best_eid]

        followers_of_best: Set[Edge] = set()
        for bucket in cache[best_eid].values():
            followers_of_best |= bucket

        anchors.append(best_edge)
        cache.pop(best_eid, None)
        totals.pop(best_eid, None)
        per_round_gain.append(best_count)
        recompute_counts.append(recomputed_entries)
        if collect_reuse_stats and decision is not None:
            reuse_rounds.append(stats.fractions())

        if _round + 1 < budget:
            old_tree = tree
            state = TrussState.compute(graph, anchors)
            tree = TrussComponentTree.build(state)
            decision = compute_reuse_decision(old_tree, tree, best_edge, followers_of_best)
        cumulative_seconds.append(time.perf_counter() - start)

    elapsed = time.perf_counter() - start
    result = evaluate_anchor_set(graph, anchors, algorithm="GAS", elapsed_seconds=elapsed)
    result.per_round_gain = per_round_gain
    result.extra["follower_method"] = method.value
    result.extra["recomputed_entries_per_round"] = recompute_counts
    result.extra["cumulative_seconds_per_round"] = cumulative_seconds
    if collect_reuse_stats:
        result.extra["reuse_stats"] = reuse_rounds
    return result
