"""AKT — the anchored k-truss *vertex* anchoring baseline (Zhang et al. 2018).

The paper compares edge anchoring (its own contribution) against the older
vertex-anchoring model in Exp-4, Exp-9, Table V and Fig. 11(a).  The original
AKT implementation is not available, so this module re-implements a greedy
AKT from its description in the paper:

* anchoring a vertex keeps its incident edges inside the k-truss as long as
  they still close at least one triangle with the retained subgraph (this is
  exactly the behaviour of Example 1: anchoring ``v8`` keeps ``(v3, v8)`` and
  ``(v4, v8)`` in the 4-truss because they form a triangle with the 4-truss
  edge ``(v3, v4)``);
* anchoring a vertex can only lift edges of trussness ``k - 1`` into the
  k-truss, and by one level at most, so the *trussness gain* credited to AKT
  for a given ``k`` is the number of (k-1)-trussness edges retained in the
  anchored k-truss;
* candidate anchor vertices are the endpoints of (k-1)-trussness edges.

The computation is restricted to the subgraph of edges with trussness at
least ``k - 1``; edges below that can never enter the k-truss under the
"needs one triangle" retention rule together with the k-truss requirement on
their triangle partners, and the restriction keeps the greedy affordable in
pure Python (DESIGN.md §3.4).
"""

from __future__ import annotations

import time
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.graph.graph import Edge, Graph, Vertex, normalize_edge
from repro.truss.state import TrussState
from repro.utils.errors import InvalidParameterError


def anchored_k_truss(
    graph: Graph,
    k: int,
    anchor_vertices: Iterable[Vertex],
    state: Optional[TrussState] = None,
) -> Set[Edge]:
    """Edges of the anchored k-truss restricted to trussness >= k - 1 edges.

    An edge not incident to an anchored vertex needs support at least
    ``k - 2`` inside the retained subgraph; an edge incident to an anchored
    vertex only needs to close one triangle with the retained subgraph.
    """
    if k < 3:
        raise InvalidParameterError("anchored k-truss requires k >= 3")
    state = state or TrussState.compute(graph)
    anchors = set(anchor_vertices)

    members: Set[Edge] = {
        edge
        for edge in graph.edges()
        if state.is_anchor(edge) or state.trussness(edge) >= k - 1
    }

    def required_support(edge: Edge) -> int:
        u, v = edge
        if u in anchors or v in anchors:
            return 1
        return k - 2

    # Peeling with decremental support maintenance: initial supports are
    # counted inside the candidate member set, then edges below their
    # requirement are removed one at a time while their triangle partners'
    # supports are decremented.
    support: Dict[Edge, int] = {}
    for edge in members:
        u, v = edge
        count = 0
        for w in graph.neighbors(u):
            if w in graph.neighbors(v):
                if normalize_edge(u, w) in members and normalize_edge(v, w) in members:
                    count += 1
        support[edge] = count

    queue: List[Edge] = [e for e in members if support[e] < required_support(e)]
    scheduled: Set[Edge] = set(queue)
    while queue:
        edge = queue.pop()
        if edge not in members:
            continue
        members.discard(edge)
        u, v = edge
        for w in graph.neighbors(u):
            if w in graph.neighbors(v):
                for other in (normalize_edge(u, w), normalize_edge(v, w)):
                    partner = normalize_edge(v, w) if other == normalize_edge(u, w) else normalize_edge(u, w)
                    if other in members and partner in members:
                        support[other] -= 1
                        if support[other] < required_support(other) and other not in scheduled:
                            scheduled.add(other)
                            queue.append(other)
    return members


def akt_gain_for_k(
    graph: Graph,
    k: int,
    anchor_vertices: Iterable[Vertex],
    state: Optional[TrussState] = None,
) -> int:
    """Trussness gain credited to AKT: (k-1)-trussness edges kept in the k-truss."""
    state = state or TrussState.compute(graph)
    retained = anchored_k_truss(graph, k, anchor_vertices, state)
    return sum(
        1
        for edge in retained
        if not state.is_anchor(edge) and state.trussness(edge) == k - 1
    )


def akt_greedy(
    graph: Graph,
    k: int,
    budget: int,
    state: Optional[TrussState] = None,
    max_candidates: Optional[int] = None,
) -> Tuple[List[Vertex], int]:
    """Greedy AKT: pick ``budget`` anchor vertices maximising the k-truss growth.

    Returns ``(anchor_vertices, gain)`` where ``gain`` counts the
    (k-1)-trussness edges pulled into the anchored k-truss.

    ``max_candidates`` caps the number of candidate vertices evaluated per
    round (ranked by the number of incident (k-1)-trussness edges); ``None``
    evaluates all of them.
    """
    if budget < 0:
        raise InvalidParameterError("budget must be non-negative")
    state = state or TrussState.compute(graph)

    hull_edges = [
        edge
        for edge in graph.edges()
        if not state.is_anchor(edge) and state.trussness(edge) == k - 1
    ]
    incident_count: Dict[Vertex, int] = {}
    for u, v in hull_edges:
        incident_count[u] = incident_count.get(u, 0) + 1
        incident_count[v] = incident_count.get(v, 0) + 1
    candidates = sorted(incident_count, key=lambda v: (-incident_count[v], repr(v)))
    if max_candidates is not None:
        candidates = candidates[:max_candidates]

    chosen: List[Vertex] = []
    current_gain = 0
    for _ in range(budget):
        best_vertex: Optional[Vertex] = None
        best_gain = current_gain
        for vertex in candidates:
            if vertex in chosen:
                continue
            gain = akt_gain_for_k(graph, k, chosen + [vertex], state)
            if gain > best_gain:
                best_vertex, best_gain = vertex, gain
        if best_vertex is None:
            # No vertex improves the objective; AKT still spends the budget
            # (mirroring the paper's fixed-b evaluation) on the highest-degree
            # remaining candidate, which simply adds no gain.
            remaining = [v for v in candidates if v not in chosen]
            if not remaining:
                break
            best_vertex = remaining[0]
            best_gain = current_gain
        chosen.append(best_vertex)
        current_gain = best_gain
    return chosen, current_gain


def akt_best_k(
    graph: Graph,
    budget: int,
    state: Optional[TrussState] = None,
    k_values: Optional[Sequence[int]] = None,
    max_candidates: Optional[int] = 30,
) -> Dict[int, int]:
    """AKT gain for every considered ``k`` (used by Table V and Fig. 11(a)).

    Returns a mapping ``k -> gain``.  ``k_values`` defaults to every value
    from 4 to ``k_max + 1`` for which a (k-1)-hull exists.
    """
    state = state or TrussState.compute(graph)
    if k_values is None:
        hulls = state.decomposition.hulls()
        k_values = sorted(k + 1 for k in hulls if k >= 3)
    gains: Dict[int, int] = {}
    for k in k_values:
        _anchors, gain = akt_greedy(graph, k, budget, state, max_candidates=max_candidates)
        gains[k] = gain
    return gains
