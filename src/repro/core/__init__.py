"""Core ATR algorithms: the paper's primary contribution.

Public entry points
-------------------
* :func:`repro.core.followers.compute_followers` — followers of one anchor
  edge (three interchangeable methods, Section III-B).
* :class:`repro.core.component_tree.TrussComponentTree` — the truss component
  tree of Section III-C.
* :func:`repro.core.gas.gas` — the GAS algorithm (Algorithm 6).
* :func:`repro.core.greedy.base_greedy` / :func:`repro.core.greedy.base_plus_greedy`
  — the BASE and BASE+ baselines.
* :func:`repro.core.exact.exact_atr` — exhaustive optimum for tiny instances.
* :mod:`repro.core.heuristics` — the Rand / Sup / Tur random baselines.
* :mod:`repro.core.akt` — the vertex-anchoring AKT baseline.
* :mod:`repro.core.edge_deletion` — the edge-deletion baseline of the case study.
* :class:`repro.core.engine.SolverEngine` — the shared session layer every
  solver runs on (solver registry, incremental re-peeling).
"""

from repro.core.akt import akt_greedy, anchored_k_truss
from repro.core.component_tree import TreeNode, TrussComponentTree
from repro.core.edge_deletion import edge_deletion_baseline
from repro.core.engine import (
    SolveSpec,
    SolverEngine,
    SolverSpec,
    available_solvers,
    get_solver,
    register_solver,
    solver_table,
)
from repro.core.exact import exact_atr, exact_atr_reference
from repro.core.followers import (
    FollowerMethod,
    compute_followers,
    followers_by_recompute,
    followers_candidate_peel,
    followers_support_check,
    trussness_gain_of_anchor,
)
from repro.core.followers_reference import (
    followers_candidate_peel_reference,
    followers_support_check_reference,
)
from repro.core.gas import gas, gas_reference
from repro.core.greedy import (
    base_greedy,
    base_greedy_reference,
    base_plus_greedy,
    base_plus_greedy_reference,
)
from repro.core.heuristics import random_baseline, support_baseline, upward_route_baseline
from repro.core.reduction import MaxCoverageInstance, build_atr_instance_from_coverage
from repro.core.result import AnchorResult, evaluate_anchor_set
from repro.core.upward_route import upward_route_edges, upward_route_size, upward_route_statistics

__all__ = [
    "FollowerMethod",
    "compute_followers",
    "followers_by_recompute",
    "followers_candidate_peel",
    "followers_candidate_peel_reference",
    "followers_support_check",
    "followers_support_check_reference",
    "trussness_gain_of_anchor",
    "TrussComponentTree",
    "TreeNode",
    "SolveSpec",
    "SolverEngine",
    "SolverSpec",
    "available_solvers",
    "get_solver",
    "register_solver",
    "solver_table",
    "gas",
    "gas_reference",
    "base_greedy",
    "base_greedy_reference",
    "base_plus_greedy",
    "base_plus_greedy_reference",
    "exact_atr",
    "exact_atr_reference",
    "random_baseline",
    "support_baseline",
    "upward_route_baseline",
    "akt_greedy",
    "anchored_k_truss",
    "edge_deletion_baseline",
    "AnchorResult",
    "evaluate_anchor_set",
    "upward_route_edges",
    "upward_route_size",
    "upward_route_statistics",
    "MaxCoverageInstance",
    "build_atr_instance_from_coverage",
]
