"""Result objects shared by every anchor-selection algorithm.

All solvers (GAS, BASE, BASE+, Exact, the random baselines, AKT and the
edge-deletion baseline) return an :class:`AnchorResult`, so the experiment
harness can treat them uniformly when building the paper's tables and
figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.graph.graph import Edge, Graph, normalize_edge
from repro.truss.state import TrussState


@dataclass
class AnchorResult:
    """Outcome of one anchor-selection run.

    Attributes
    ----------
    algorithm:
        Human-readable algorithm name ("GAS", "BASE+", "Rand", ...).
    anchors:
        The selected anchor edges, in selection order.
    gain:
        The trussness gain ``TG(A, G)`` of the final anchor set, evaluated
        with Definition 4 (anchored edges excluded from the sum).
    per_round_gain:
        Number of followers gained by each greedy round (empty for one-shot
        algorithms such as the random baselines).
    followers:
        The union of follower edges of the final anchor set, i.e. every edge
        whose trussness is strictly higher than in the original graph.
    gain_by_trussness:
        Histogram ``original trussness -> number of followers`` (used by the
        case study and Fig. 11(b)).
    elapsed_seconds:
        Wall-clock time spent by the algorithm.
    extra:
        Algorithm-specific diagnostics (e.g. reuse statistics for GAS).
    """

    algorithm: str
    anchors: List[Edge]
    gain: int
    per_round_gain: List[int] = field(default_factory=list)
    followers: Set[Edge] = field(default_factory=set)
    gain_by_trussness: Dict[int, int] = field(default_factory=dict)
    elapsed_seconds: float = 0.0
    extra: Dict[str, object] = field(default_factory=dict)

    @property
    def budget(self) -> int:
        return len(self.anchors)

    def summary(self) -> str:
        """One-line human readable summary used by the examples and the CLI."""
        return (
            f"{self.algorithm}: b={self.budget} gain={self.gain} "
            f"followers={len(self.followers)} time={self.elapsed_seconds:.3f}s"
        )


def evaluate_anchor_set(
    graph: Graph,
    anchors: Iterable[Edge],
    algorithm: str = "custom",
    elapsed_seconds: float = 0.0,
    baseline_state: Optional[TrussState] = None,
    extra: Optional[Dict[str, object]] = None,
) -> AnchorResult:
    """Evaluate an arbitrary anchor set with Definition 4.

    This is the single source of truth for the reported gain of *every*
    algorithm: whatever bookkeeping a solver does internally, the number in
    the tables always comes from one anchored truss decomposition compared
    against the original decomposition.
    """
    anchor_list = [graph.require_edge(e) for e in anchors]
    baseline_state = baseline_state or TrussState.compute(graph)
    anchored_state = baseline_state.with_anchors(anchor_list)

    followers = anchored_state.followers_relative_to(baseline_state)
    gain = anchored_state.trussness_gain_from(baseline_state)

    gain_by_trussness: Dict[int, int] = {}
    for edge in followers:
        original = int(baseline_state.trussness(edge))
        gain_by_trussness[original] = gain_by_trussness.get(original, 0) + 1

    return AnchorResult(
        algorithm=algorithm,
        anchors=anchor_list,
        gain=gain,
        followers=followers,
        gain_by_trussness=dict(sorted(gain_by_trussness.items())),
        elapsed_seconds=elapsed_seconds,
        extra=extra or {},
    )


def best_of(results: Sequence[AnchorResult]) -> AnchorResult:
    """Return the result with the highest gain (ties: first one)."""
    if not results:
        raise ValueError("best_of() requires at least one result")
    best = results[0]
    for candidate in results[1:]:
        if candidate.gain > best.gain:
            best = candidate
    return best
