"""Edge-deletion baseline used by the paper's case study (Exp-4, Fig. 7).

The baseline identifies "critical" edges as the ones whose *removal* causes
the largest drop in total trussness (a k-truss minimisation view, cf. Zhu et
al. IJCAI 2019), then anchors those edges and measures the resulting
trussness gain.  The paper uses it to illustrate that importance-by-removal
and importance-by-anchoring select very different edges: removal-critical
edges tend to have high trussness already, and anchoring them barely lifts
anything because an anchor can only help edges of *higher* deletion order.

Evaluating the removal impact of every edge requires a truss decomposition
per edge, which is the most expensive loop in the harness; the candidate
pool can therefore be capped (``max_candidates``) to the edges with the
highest trussness/support, which is where the removal-critical edges live.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.result import AnchorResult, evaluate_anchor_set
from repro.graph.graph import Edge, Graph
from repro.graph.triangles import support_map
from repro.truss.decomposition import truss_decomposition
from repro.truss.state import TrussState
from repro.utils.errors import InvalidParameterError


def trussness_loss_of_removal(graph: Graph, edge: Edge) -> int:
    """Total trussness lost by deleting ``edge`` (the removed edge excluded)."""
    edge = graph.require_edge(edge)
    before = truss_decomposition(graph)
    reduced = graph.copy()
    reduced.remove_edge(*edge)
    after = truss_decomposition(reduced)
    loss = 0
    for other, old_value in before.trussness.items():
        if other == edge:
            continue
        loss += old_value - after.trussness[other]
    return loss


def edge_deletion_baseline(
    graph: Graph,
    budget: int,
    max_candidates: Optional[int] = 100,
    baseline_state: Optional[TrussState] = None,
) -> AnchorResult:
    """Select ``budget`` removal-critical edges greedily and anchor them.

    Parameters
    ----------
    max_candidates:
        Number of highest (trussness, support) edges evaluated per round;
        ``None`` evaluates every edge (slow).
    """
    if budget < 0:
        raise InvalidParameterError("budget must be non-negative")
    start = time.perf_counter()
    baseline_state = baseline_state or TrussState.compute(graph)
    supports = support_map(graph)

    working = graph.copy()
    chosen: List[Edge] = []
    for _ in range(min(budget, graph.num_edges)):
        decomposition = truss_decomposition(working)
        candidates = sorted(
            decomposition.trussness,
            key=lambda e: (-decomposition.trussness[e], -supports.get(e, 0), working.edge_id(e)),
        )
        if max_candidates is not None:
            candidates = candidates[:max_candidates]
        best_edge: Optional[Edge] = None
        best_loss = -1
        for edge in candidates:
            loss = trussness_loss_of_removal(working, edge)
            if loss > best_loss:
                best_edge, best_loss = edge, loss
        if best_edge is None:
            break
        chosen.append(best_edge)
        working.remove_edge(*best_edge)

    elapsed = time.perf_counter() - start
    result = evaluate_anchor_set(
        graph,
        chosen,
        algorithm="Edge-deletion",
        elapsed_seconds=elapsed,
        baseline_state=baseline_state,
    )
    result.extra["removal_candidates"] = max_candidates
    return result
