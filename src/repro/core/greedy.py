"""The BASE and BASE+ greedy solvers (Algorithm 2 and its accelerated variant).

Both algorithms implement the same greedy framework: ``b`` rounds, each of
which evaluates the trussness gain of every candidate edge against the
current anchored graph and anchors the best one.  They differ only in how
the per-edge gain is computed:

* ``BASE`` reruns the full truss decomposition for every candidate
  (``O(b · m^{2.5})`` — the paper's Algorithm 2, only feasible on tiny
  graphs).
* ``BASE+`` computes followers with the upward-route + support-check
  machinery of Section III-B (Algorithm 3), avoiding whole-graph
  decompositions for the candidates, but still re-evaluates every candidate
  in every round.

Ties between candidates with the same gain are broken by the smallest edge
id, and the same rule is used by GAS so that the three solvers return
identical anchor sets (a property the test-suite checks).
"""

from __future__ import annotations

import time
from typing import Iterable, List, Optional, Set, Tuple

from repro.core.followers import FollowerMethod, compute_followers
from repro.core.result import AnchorResult, evaluate_anchor_set
from repro.graph.graph import Edge, Graph
from repro.graph.index import GraphIndex
from repro.truss.state import TrussState
from repro.utils.errors import InvalidParameterError


def _check_budget(graph: Graph, budget: int) -> None:
    if budget < 0:
        raise InvalidParameterError("budget must be non-negative")
    if budget > graph.num_edges:
        raise InvalidParameterError(
            f"budget {budget} exceeds the number of edges {graph.num_edges}"
        )


def _pick_best(
    graph: Graph, scored: Iterable[Tuple[Edge, int]]
) -> Tuple[Optional[Edge], int]:
    """Highest score wins; ties are broken by the smallest edge id."""
    best_edge: Optional[Edge] = None
    best_score = -1
    best_id = -1
    for edge, score in scored:
        edge_id = graph.edge_id(edge)
        if score > best_score or (score == best_score and edge_id < best_id):
            best_edge, best_score, best_id = edge, score, edge_id
    return best_edge, max(best_score, 0)


def base_greedy(
    graph: Graph,
    budget: int,
    initial_anchors: Iterable[Edge] = (),
) -> AnchorResult:
    """The paper's BASE algorithm (Algorithm 2).

    Every candidate is evaluated by a full anchored truss decomposition.
    This is intentionally the slowest solver and exists as the correctness
    reference and as the first bar of the efficiency experiments.
    """
    _check_budget(graph, budget)
    start = time.perf_counter()
    # One frozen kernel snapshot serves every candidate decomposition of
    # every round (anchors are overlays; the graph itself never changes).
    GraphIndex.of(graph)
    anchors: List[Edge] = [graph.require_edge(e) for e in initial_anchors]
    per_round_gain: List[int] = []
    cumulative_seconds: List[float] = []
    original_state = TrussState.compute(graph)

    for _ in range(budget):
        state = TrussState.compute(graph, anchors)
        current_objective = state.trussness_gain_from(original_state)
        scored = []
        for edge in state.non_anchor_edges():
            anchored = state.with_anchor(edge)
            # Score by the true marginal gain of Definition 4 (relative to the
            # original graph): anchoring an edge that was itself promoted by
            # earlier anchors forfeits its own contribution, and the score
            # accounts for that.  See the module docstring of gas.py.
            scored.append(
                (edge, anchored.trussness_gain_from(original_state) - current_objective)
            )
        best_edge, best_score = _pick_best(graph, scored)
        if best_edge is None:
            break
        anchors.append(best_edge)
        per_round_gain.append(best_score)
        cumulative_seconds.append(time.perf_counter() - start)

    elapsed = time.perf_counter() - start
    result = evaluate_anchor_set(graph, anchors, algorithm="BASE", elapsed_seconds=elapsed)
    result.per_round_gain = per_round_gain
    result.extra["cumulative_seconds_per_round"] = cumulative_seconds
    return result


def base_plus_greedy(
    graph: Graph,
    budget: int,
    initial_anchors: Iterable[Edge] = (),
    method: FollowerMethod | str = FollowerMethod.SUPPORT_CHECK,
) -> AnchorResult:
    """The BASE+ algorithm: greedy selection with Algorithm-3 follower search.

    Parameters
    ----------
    method:
        Which follower computation to use for the per-candidate evaluation
        (``support-check`` by default, matching the paper; ``peel`` and
        ``recompute`` are accepted for ablation studies).
    """
    _check_budget(graph, budget)
    start = time.perf_counter()
    # Shared kernel snapshot: the follower search of every candidate in every
    # round reads the same precomputed triangle lists.
    GraphIndex.of(graph)
    anchors: List[Edge] = [graph.require_edge(e) for e in initial_anchors]
    per_round_gain: List[int] = []
    cumulative_seconds: List[float] = []
    original_state = TrussState.compute(graph)

    for _ in range(budget):
        state = TrussState.compute(graph, anchors)
        current_trussness = state.decomposition.trussness
        original_trussness = original_state.decomposition.trussness
        scored = []
        for edge in state.non_anchor_edges():
            followers = compute_followers(state, edge, method=method)
            # Marginal gain of Definition 4: the follower count minus the gain
            # the candidate itself accumulated as a follower of earlier
            # anchors (that gain is forfeited once the edge becomes an anchor).
            accumulated = current_trussness[edge] - original_trussness[edge]
            scored.append((edge, len(followers) - accumulated))
        best_edge, best_score = _pick_best(graph, scored)
        if best_edge is None:
            break
        anchors.append(best_edge)
        per_round_gain.append(best_score)
        cumulative_seconds.append(time.perf_counter() - start)

    elapsed = time.perf_counter() - start
    result = evaluate_anchor_set(graph, anchors, algorithm="BASE+", elapsed_seconds=elapsed)
    result.per_round_gain = per_round_gain
    result.extra["follower_method"] = str(FollowerMethod(method).value)
    result.extra["cumulative_seconds_per_round"] = cumulative_seconds
    return result
