"""The BASE and BASE+ greedy solvers (Algorithm 2 and its accelerated variant).

Both algorithms implement the same greedy framework: ``b`` rounds, each of
which evaluates the trussness gain of every candidate edge against the
current anchored graph and anchors the best one.  They differ only in how
the per-edge gain is computed:

* ``BASE`` scores a candidate by the decomposition diff of anchoring it
  (the paper's Algorithm 2).  Through the :class:`~repro.core.engine.SolverEngine`
  that diff comes from an *incremental re-peel* restricted to the
  candidate's dirty region (with a full-peel fallback), which is what makes
  BASE feasible beyond tiny graphs; the seed full-decomposition-per-candidate
  loop is preserved as :func:`base_greedy_reference`.
* ``BASE+`` computes followers with the upward-route + support-check
  machinery of Section III-B (Algorithm 3), avoiding whole-graph
  decompositions for the candidates, but still re-evaluates every candidate
  in every round.

Ties between candidates with the same gain are broken by the smallest edge
id, and the same rule is used by GAS so that the three solvers return
identical anchor sets (a property the test-suite checks).

Both public functions are thin wrappers over the solver registry
(``engine.solve("base", ...)`` / ``engine.solve("base+", ...)``); the
pre-engine implementations are kept verbatim as ``*_reference`` twins for
the equivalence tests and the before/after benchmarks.
"""

from __future__ import annotations

import time
from typing import Iterable, List, Optional, Tuple

from repro.api.spec import SolveSpec
from repro.core.engine import SolverEngine, register_solver
from repro.core.followers import FollowerMethod, compute_followers
from repro.core.result import AnchorResult, evaluate_anchor_set
from repro.graph.graph import Edge, Graph
from repro.graph.index import GraphIndex
from repro.truss.state import TrussState
from repro.utils.errors import InvalidParameterError


def _check_budget(graph: Graph, budget: int) -> None:
    if budget < 0:
        raise InvalidParameterError("budget must be non-negative")
    if budget > graph.num_edges:
        raise InvalidParameterError(
            f"budget {budget} exceeds the number of edges {graph.num_edges}"
        )


def _pick_best(
    graph: Graph, scored: Iterable[Tuple[Edge, int]]
) -> Tuple[Optional[Edge], int]:
    """Highest score wins; ties are broken by the smallest edge id."""
    best_edge: Optional[Edge] = None
    best_score = -1
    best_id = -1
    for edge, score in scored:
        edge_id = graph.edge_id(edge)
        if score > best_score or (score == best_score and edge_id < best_id):
            best_edge, best_score, best_id = edge, score, edge_id
    return best_edge, max(best_score, 0)


# ---------------------------------------------------------------------------
# Engine-based solvers (registered)
# ---------------------------------------------------------------------------
@register_solver(
    "base",
    description="greedy with per-candidate incremental re-peel (Algorithm 2)",
    params=("candidate_pool",),
)
def _solve_base(engine: SolverEngine, request: SolveSpec) -> AnchorResult:
    graph = engine.graph
    _check_budget(graph, request.budget)
    pool_strategy = str(request.param("candidate_pool", "reuse"))
    if pool_strategy not in ("reuse", "scan"):
        raise InvalidParameterError(
            f"unknown candidate_pool {pool_strategy!r}; expected 'reuse' or 'scan'"
        )
    use_reuse = pool_strategy == "reuse"
    start = time.perf_counter()
    per_round_gain: List[int] = []
    cumulative_seconds: List[float] = []
    index = engine.index
    m = index.num_edges
    edge_of = index.edge_of
    original_trussness = engine.original_state.kernel_views()[1]

    # Candidate-pool narrowing (``candidate_pool="reuse"``, the default):
    # the reuse rule proves that a committed anchor can only change the gain
    # of candidates inside its dirty closure — the edges whose trussness or
    # layer moved, plus (via the component tree's reverse ``sla`` index) the
    # candidates whose ``sla`` references a touched node.  The engine's
    # :meth:`take_reuse_decision` yields exactly that set when the tree was
    # patched incrementally, so every round after the first re-peels only
    # the dirty candidates and keeps all other cached gains.  ``"scan"``
    # forces the previous evaluate-everything behaviour (the reference twin;
    # both produce identical anchors and gains — asserted by the tests).
    score_of: dict = {}
    invalidation = None
    if use_reuse and request.budget > 1:
        engine.tree()  # build the baseline tree so commits patch (and log) it

    for _round in range(request.budget):
        state = engine.state
        current_trussness, anchor_mask = (
            state.kernel_views()[1],
            state.kernel_views()[3],
        )
        dirty_eids = None
        if use_reuse and invalidation is not None and invalidation.dirty_eids is not None:
            dirty_eids = invalidation.dirty_eids
        if dirty_eids is None:
            score_of.clear()
            eval_eids = [eid for eid in range(m) if not anchor_mask[eid]]
        else:
            eval_eids = [eid for eid in sorted(dirty_eids) if not anchor_mask[eid]]
        for eid in eval_eids:
            # Score by the true marginal gain of Definition 4 (relative to
            # the original graph): the candidate's follower count from the
            # restricted re-peel, minus the gain the candidate itself
            # accumulated as a follower of earlier anchors (forfeited once
            # it becomes an anchor).  See the module docstring of gas.py.
            accumulated = current_trussness[eid] - original_trussness[eid]
            score_of[eid] = engine.evaluate_gain(edge_of[eid]) - accumulated
        # Highest cached score wins; ties break on the smallest edge id
        # (dense eids are ascending in public edge id), exactly like
        # :func:`_pick_best` over a full scan.
        best_eid = -1
        best_score = -1
        for eid, score in score_of.items():
            if score > best_score or (score == best_score and eid < best_eid):
                best_eid, best_score = eid, score
        if best_eid < 0:
            break
        best_edge = edge_of[best_eid]
        engine.commit_anchor(best_edge)
        score_of.pop(best_eid, None)
        per_round_gain.append(max(best_score, 0))
        if use_reuse and _round + 1 < request.budget:
            # Advance the state now and diff the trussness arrays: the
            # committed anchor's followers are exactly the edges whose
            # trussness moved (+1 each, Lemma 1) — the reuse rule's input.
            previous_trussness = current_trussness
            new_trussness = engine.state.kernel_views()[1]
            followers = [
                edge_of[e2]
                for e2 in range(m)
                if e2 != best_eid and new_trussness[e2] != previous_trussness[e2]
            ]
            invalidation = engine.take_reuse_decision(best_edge, followers)
        cumulative_seconds.append(time.perf_counter() - start)

    elapsed = time.perf_counter() - start
    # Evaluate against the engine's own baseline (no redundant recompute;
    # consistent with the round scores when the baseline carries anchors).
    result = evaluate_anchor_set(
        graph,
        engine.anchors,
        algorithm="BASE",
        elapsed_seconds=elapsed,
        baseline_state=engine.original_state,
    )
    result.per_round_gain = per_round_gain
    result.extra["cumulative_seconds_per_round"] = cumulative_seconds
    result.extra["engine"] = dict(engine.stats)
    return result


@register_solver(
    "base+",
    description="greedy with Algorithm-3 follower search",
    params=("method",),
)
def _solve_base_plus(engine: SolverEngine, request: SolveSpec) -> AnchorResult:
    graph = engine.graph
    _check_budget(graph, request.budget)
    method = FollowerMethod(request.param("method", FollowerMethod.SUPPORT_CHECK))
    start = time.perf_counter()
    per_round_gain: List[int] = []
    cumulative_seconds: List[float] = []
    original_trussness = engine.original_state.decomposition.trussness

    for _ in range(request.budget):
        state = engine.state
        current_trussness = state.decomposition.trussness
        scored = []
        for edge in state.non_anchor_edges():
            followers = compute_followers(state, edge, method=method)
            # Marginal gain of Definition 4: the follower count minus the gain
            # the candidate itself accumulated as a follower of earlier
            # anchors (that gain is forfeited once the edge becomes an anchor).
            accumulated = current_trussness[edge] - original_trussness[edge]
            scored.append((edge, len(followers) - accumulated))
        best_edge, best_score = _pick_best(graph, scored)
        if best_edge is None:
            break
        engine.commit_anchor(best_edge)
        per_round_gain.append(best_score)
        cumulative_seconds.append(time.perf_counter() - start)

    elapsed = time.perf_counter() - start
    # Evaluate against the engine's own baseline (no redundant recompute;
    # consistent with the round scores when the baseline carries anchors).
    result = evaluate_anchor_set(
        graph,
        engine.anchors,
        algorithm="BASE+",
        elapsed_seconds=elapsed,
        baseline_state=engine.original_state,
    )
    result.per_round_gain = per_round_gain
    result.extra["follower_method"] = method.value
    result.extra["cumulative_seconds_per_round"] = cumulative_seconds
    result.extra["engine"] = dict(engine.stats)
    return result


# ---------------------------------------------------------------------------
# Public wrappers (unchanged signatures)
# ---------------------------------------------------------------------------
def base_greedy(
    graph: Graph,
    budget: int,
    initial_anchors: Iterable[Edge] = (),
    candidate_pool: str = "reuse",
) -> AnchorResult:
    """The paper's BASE algorithm (Algorithm 2), run through the engine.

    Selects exactly the same anchors as :func:`base_greedy_reference` (the
    equivalence suite asserts this); the per-candidate evaluation is an
    incremental re-peel instead of a whole-graph decomposition, and with
    ``candidate_pool="reuse"`` (the default) every round after the first
    re-evaluates only the candidates the reuse rule marks dirty — the dirty
    closure of the committed anchor plus the candidates whose ``sla``
    references a touched tree node (via the reverse ``sla`` index).
    ``candidate_pool="scan"`` forces the evaluate-everything reference twin.
    """
    engine = SolverEngine(graph)
    return engine.solve(
        "base", budget, initial_anchors=initial_anchors, candidate_pool=candidate_pool
    )


def base_plus_greedy(
    graph: Graph,
    budget: int,
    initial_anchors: Iterable[Edge] = (),
    method: FollowerMethod | str = FollowerMethod.SUPPORT_CHECK,
) -> AnchorResult:
    """The BASE+ algorithm: greedy selection with Algorithm-3 follower search.

    Parameters
    ----------
    method:
        Which follower computation to use for the per-candidate evaluation
        (``support-check`` by default, matching the paper; ``peel`` and
        ``recompute`` are accepted for ablation studies).
    """
    engine = SolverEngine(graph)
    return engine.solve("base+", budget, initial_anchors=initial_anchors, method=method)


# ---------------------------------------------------------------------------
# Pre-engine reference implementations (seed behaviour, kept verbatim)
# ---------------------------------------------------------------------------
def base_greedy_reference(
    graph: Graph,
    budget: int,
    initial_anchors: Iterable[Edge] = (),
) -> AnchorResult:
    """Pre-engine BASE: one full anchored truss decomposition per candidate.

    Kept as the ground truth for the engine equivalence tests and as the
    "before" bar of the engine benchmarks.  This is intentionally the
    slowest solver.
    """
    _check_budget(graph, budget)
    start = time.perf_counter()
    # One frozen kernel snapshot serves every candidate decomposition of
    # every round (anchors are overlays; the graph itself never changes).
    GraphIndex.of(graph)
    anchors: List[Edge] = [graph.require_edge(e) for e in initial_anchors]
    per_round_gain: List[int] = []
    cumulative_seconds: List[float] = []
    original_state = TrussState.compute(graph)

    for _ in range(budget):
        state = TrussState.compute(graph, anchors)
        current_objective = state.trussness_gain_from(original_state)
        scored = []
        for edge in state.non_anchor_edges():
            anchored = state.with_anchor(edge)
            scored.append(
                (edge, anchored.trussness_gain_from(original_state) - current_objective)
            )
        best_edge, best_score = _pick_best(graph, scored)
        if best_edge is None:
            break
        anchors.append(best_edge)
        per_round_gain.append(best_score)
        cumulative_seconds.append(time.perf_counter() - start)

    elapsed = time.perf_counter() - start
    result = evaluate_anchor_set(graph, anchors, algorithm="BASE", elapsed_seconds=elapsed)
    result.per_round_gain = per_round_gain
    result.extra["cumulative_seconds_per_round"] = cumulative_seconds
    return result


def base_plus_greedy_reference(
    graph: Graph,
    budget: int,
    initial_anchors: Iterable[Edge] = (),
    method: FollowerMethod | str = FollowerMethod.SUPPORT_CHECK,
) -> AnchorResult:
    """Pre-engine BASE+: full re-decomposition per round (no incremental peel)."""
    _check_budget(graph, budget)
    start = time.perf_counter()
    # Shared kernel snapshot: the follower search of every candidate in every
    # round reads the same precomputed triangle lists.
    GraphIndex.of(graph)
    anchors: List[Edge] = [graph.require_edge(e) for e in initial_anchors]
    per_round_gain: List[int] = []
    cumulative_seconds: List[float] = []
    original_state = TrussState.compute(graph)

    for _ in range(budget):
        state = TrussState.compute(graph, anchors)
        current_trussness = state.decomposition.trussness
        original_trussness = original_state.decomposition.trussness
        scored = []
        for edge in state.non_anchor_edges():
            followers = compute_followers(state, edge, method=method)
            accumulated = current_trussness[edge] - original_trussness[edge]
            scored.append((edge, len(followers) - accumulated))
        best_edge, best_score = _pick_best(graph, scored)
        if best_edge is None:
            break
        anchors.append(best_edge)
        per_round_gain.append(best_score)
        cumulative_seconds.append(time.perf_counter() - start)

    elapsed = time.perf_counter() - start
    result = evaluate_anchor_set(graph, anchors, algorithm="BASE+", elapsed_seconds=elapsed)
    result.per_round_gain = per_round_gain
    result.extra["follower_method"] = str(FollowerMethod(method).value)
    result.extra["cumulative_seconds_per_round"] = cumulative_seconds
    return result
